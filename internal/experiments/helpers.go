package experiments

import (
	"context"
	"fmt"

	"paratime/internal/arbiter"
	"paratime/internal/cfg"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/isa"
	"paratime/internal/pipeline"
	"paratime/internal/report"
	"paratime/internal/spec"
	"paratime/internal/workload"
)

// progT abbreviates the program type in experiment bodies.
type progT = isa.Program

// eng is the package-shared batch engine: every experiment's analysis
// fan-out goes through one pool and one memo cache, so experiments that
// revisit a (task, cache-geometry) pair — e.g. the suite under the
// default system in E1 and E18, or one task under several bus bounds in
// E12/E13 — reuse the prepared prefix.
var eng = engine.New(0)

// analyzeAll batches full analyses for every request through eng.
func analyzeAll(reqs []engine.Request) ([]*core.Analysis, error) {
	return eng.AnalyzeAll(context.Background(), reqs)
}

// prepareAll batches the analysis prefix for tasks sharing one system
// configuration (the joint-analysis shape).
func prepareAll(tasks []core.Task, sys core.SystemConfig) ([]*core.Analysis, error) {
	return eng.PrepareAll(context.Background(), engine.Requests(tasks, sys))
}

// runScenario executes one scenario on the package-shared engine; the
// rebased experiments build their requests declaratively through it.
func runScenario(sc *spec.Scenario) (*spec.Report, error) {
	return spec.Run(context.Background(), sc, eng)
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func withBus(sys core.SystemConfig, d int) core.SystemConfig {
	sys.Mem.BusDelay = d
	return sys
}

func mustAsm(name, src string) *isa.Program { return isa.MustAssemble(name, src) }

func mustGraph(task core.Task) *cfg.Graph { return cfg.MustBuild(task.Prog) }

func flatTiming(fetch, mem int) pipeline.TimingFn {
	return func(b *cfg.Block, i int) pipeline.InstTiming {
		return pipeline.InstTiming{Fetch: fetch, Mem: mem}
	}
}

// makeNHRTs returns n non-critical co-runner programs.
func makeNHRTs(n int) []*isa.Program {
	var out []*isa.Program
	for _, t := range makeNHRTTasks(n) {
		out = append(out, t.Prog)
	}
	return out
}

func makeNHRTTasks(n int) []core.Task {
	all := []core.Task{
		workload.Fib(40, workload.Slot(10)),
		workload.CountBits(6, workload.Slot(11)),
		workload.CRC(10, workload.Slot(12)),
		workload.MemCopy(24, workload.Slot(13)),
		workload.BSort(8, workload.Slot(14)),
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// bigLoopTask builds a loop whose straight-line body has bodyInsts
// instructions (an instruction-side working set larger than a tiny L1I
// but fitting the L2), iterated iters times, at the default base.
func bigLoopTask(iters, bodyInsts int) core.Task {
	return bigLoopTaskAt(iters, bodyInsts, isa.DefaultBase)
}

// bigLoopTaskAt places the big loop at an explicit text base.
func bigLoopTaskAt(iters, bodyInsts int, base uint32) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("bigloop@%x", base)).SetBase(base)
	b.Li(isa.R1, int32(iters))
	b.Label("loop")
	for i := 0; i < bodyInsts; i++ {
		b.Op3(isa.ADD, isa.R2+isa.Reg(i%4), isa.R2, isa.R3)
	}
	b.OpI(isa.ADDI, isa.R1, isa.R1, -1)
	b.Br(isa.BNE, isa.R1, isa.R0, "loop")
	b.Halt()
	p, err := b.Done()
	if err != nil {
		panic(err)
	}
	return core.Task{Name: p.Name, Prog: p}
}

// phasedTask is the two-phase array-walk task of the locking experiments.
func phasedTask() core.Task {
	src := `
        li   r3, 0x8000
        li   r5, 0x8400
p1:     ld   r2, 0(r3)
        add  r4, r4, r2
        addi r3, r3, 4
        bne  r3, r5, p1
        li   r3, 0x9000
        li   r5, 0x9400
p2:     ld   r2, 0(r3)
        add  r4, r4, r2
        addi r3, r3, 4
        bne  r3, r5, p2
        halt
.data 0x8000
        .word 1
.data 0x9000
        .word 2`
	return core.Task{Name: "phased", Prog: mustAsm("phased", src)}
}

// --- E11: TDMA offset-set analysis -----------------------------------------

// tdmaStage is one diamond of the synthetic multi-path program: the two
// alternatives differ in compute length, and each path issues one bus
// access at its end.
type tdmaStage struct {
	computeA, computeB int64
}

// Exp11TDMA (§5.2, Rosén et al.): exact TDMA analysis must track every
// possible block start offset within the bus period; the offset-set size
// grows with path multiplicity, while the offset-blind fallback bound
// (sum of other slots per access) degrades the WCET — the survey's
// argument that static bus schedules fit static WCET analysis only for
// programs with very few paths.
func Exp11TDMA() (*Result, error) {
	lat := 6
	bus := arbiter.NewTDMA([]arbiter.Slot{{Owner: 0, Len: 8}, {Owner: 1, Len: 10}, {Owner: 2, Len: 8}}, lat)
	t := report.New("E11: TDMA offset-set analysis vs fallback bound",
		"diamonds", "paths", "offset states", "exact WCET", "fallback WCET", "fallback/exact")
	var lastStates float64
	for k := 2; k <= 10; k += 2 {
		stages := make([]tdmaStage, k)
		for i := range stages {
			stages[i] = tdmaStage{computeA: int64(3 + i%5), computeB: int64(9 + (i*3)%7)}
		}
		exact, states := tdmaExact(bus, 0, stages)
		fallback := tdmaFallback(bus, 0, stages)
		paths := 1 << k
		t.Add(k, paths, states, exact, fallback, report.Ratio(fallback, exact))
		lastStates = float64(states)
		if fallback < exact {
			return nil, fmt.Errorf("e11: fallback %d below exact %d", fallback, exact)
		}
	}
	return &Result{Table: t, Metrics: map[string]float64{"offset_states": lastStates}}, nil
}

// tdmaExact runs the offset-set DP: per stage, a map from bus-period
// offset to the maximum completion time reaching that offset. Returns the
// exact WCET and the total number of (stage, offset) states.
func tdmaExact(bus *arbiter.TDMA, coreID int, stages []tdmaStage) (int64, int) {
	period := bus.Period()
	cur := map[int64]int64{0: 0} // offset -> max absolute time
	states := 1
	step := func(offsets map[int64]int64, compute int64) map[int64]int64 {
		out := map[int64]int64{}
		//paralint:unordered max-fold per landing offset; commutative
		for _, tmax := range offsets {
			reqAt := tmax + compute
			grant := bus.GrantAfter(coreID, reqAt)
			done := grant + int64(bus.Latency())
			off := done % period
			if v, ok := out[off]; !ok || done > v {
				out[off] = done
			}
		}
		return out
	}
	for _, st := range stages {
		a := step(cur, st.computeA)
		b := step(cur, st.computeB)
		merged := a
		//paralint:unordered max-merge of two offset maps; commutative
		for off, v := range b {
			if w, ok := merged[off]; !ok || v > w {
				merged[off] = v
			}
		}
		cur = merged
		states += len(cur)
	}
	var wcet int64
	//paralint:unordered max-fold over final offsets
	for _, v := range cur {
		if v > wcet {
			wcet = v
		}
	}
	return wcet, states
}

// tdmaFallback prices every access with the offset-blind upper bound.
func tdmaFallback(bus *arbiter.TDMA, coreID int, stages []tdmaStage) int64 {
	per := int64(bus.SumOfOtherSlots(coreID) + bus.Latency())
	var total int64
	for _, st := range stages {
		c := st.computeA
		if st.computeB > c {
			c = st.computeB
		}
		total += c + per
	}
	return total
}
