package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTightnessBaselineMatches is the in-process form of the CI gate:
// the committed TIGHTNESS.json must match a fresh run exactly — no
// loosened bounds, no exact-worst drift, no soundness breaks.
func TestTightnessBaselineMatches(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "TIGHTNESS.json"))
	if err != nil {
		t.Fatalf("%v (regenerate with `paratime tightness -update`)", err)
	}
	baseline, err := DecodeTightness(data)
	if err != nil {
		t.Fatal(err)
	}
	current, err := TightnessAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTightness(current, baseline); err != nil {
		t.Errorf("%v\n(if the change is intentional, rerun `paratime tightness -update`)", err)
	}
}

// TestTightnessEntriesSandwiched: every fresh entry satisfies
// 0 < exact <= bound and carries the matching ratio.
func TestTightnessEntriesSandwiched(t *testing.T) {
	entries, err := TightnessAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Exact <= 0 {
			t.Errorf("%s/%s: non-positive exact worst %d", e.Scenario, e.Task, e.Exact)
		}
		if e.Exact > e.Bound {
			t.Errorf("%s/%s: UNSOUND exact %d > bound %d", e.Scenario, e.Task, e.Exact, e.Bound)
		}
		if want := float64(e.Exact) / float64(e.Bound); e.Tightness != want {
			t.Errorf("%s/%s: tightness %v, want %v", e.Scenario, e.Task, e.Tightness, want)
		}
		if e.Tightness > 1 {
			t.Errorf("%s/%s: tightness %v > 1", e.Scenario, e.Task, e.Tightness)
		}
	}
}

// TestTightnessGateDetectsLoosening seeds a deliberate precision
// regression — the loosened-bound demonstration the gate exists for —
// plus the other failure classes, against the real current entries.
func TestTightnessGateDetectsLoosening(t *testing.T) {
	current, err := TightnessAll()
	if err != nil {
		t.Fatal(err)
	}
	baseline := append([]TightnessEntry(nil), current...)
	if err := CheckTightness(current, baseline); err != nil {
		t.Fatalf("identical entries must pass the gate: %v", err)
	}

	// Deliberate loosening: the first bound grows by one cycle.
	loosened := append([]TightnessEntry(nil), current...)
	loosened[0].Bound++
	err = CheckTightness(loosened, baseline)
	if err == nil || !strings.Contains(err.Error(), "precision regression") {
		t.Errorf("loosened bound not caught: %v", err)
	}

	// Soundness break: exact climbs past the bound.
	unsound := append([]TightnessEntry(nil), current...)
	unsound[0].Exact = unsound[0].Bound + 1
	err = CheckTightness(unsound, baseline)
	if err == nil || !strings.Contains(err.Error(), "UNSOUND") {
		t.Errorf("soundness break not caught: %v", err)
	}

	// Oracle drift: the exact worst moved without the bound moving.
	drifted := append([]TightnessEntry(nil), current...)
	drifted[0].Exact--
	err = CheckTightness(drifted, baseline)
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Errorf("exact-worst drift not caught: %v", err)
	}

	// Coverage drift in both directions.
	err = CheckTightness(current[1:], baseline)
	if err == nil || !strings.Contains(err.Error(), "no longer produced") {
		t.Errorf("dropped entry not caught: %v", err)
	}
	extra := append(append([]TightnessEntry(nil), current...),
		TightnessEntry{Scenario: "new-scenario", Task: "t", Exact: 1, Bound: 2, Tightness: 0.5})
	err = CheckTightness(extra, baseline)
	if err == nil || !strings.Contains(err.Error(), "not in baseline") {
		t.Errorf("new entry not caught: %v", err)
	}

	// A tightened bound is an improvement, not a regression.
	tightened := append([]TightnessEntry(nil), current...)
	if tightened[0].Bound > tightened[0].Exact {
		tightened[0].Bound--
		if err := CheckTightness(tightened, baseline); err != nil {
			t.Errorf("tightened bound must pass the gate: %v", err)
		}
	}

	// Round-trip through the committed encoding preserves the gate.
	data, err := EncodeTightness(current)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTightness(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTightness(back, baseline); err != nil {
		t.Errorf("encode/decode round trip fails the gate: %v", err)
	}
}
