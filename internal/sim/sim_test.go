package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
)

// testMemCfg is the memory device every test uses.
func testMemCfg() memctrl.Config { return memctrl.DefaultConfig() }

func l1i() cache.Config {
	return cache.Config{Name: "L1I", Sets: 8, Ways: 2, LineBytes: 16, HitLatency: 1}
}
func l1d() cache.Config {
	return cache.Config{Name: "L1D", Sets: 8, Ways: 2, LineBytes: 16, HitLatency: 1}
}
func l2() cache.Config {
	return cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
}

// staticSys mirrors a sim core configuration for the static analyzer.
func staticSys(busDelay int, withL2 bool) core.SystemConfig {
	sys := core.SystemConfig{
		Pipeline: pipeline.DefaultConfig(),
		Mem: core.MemSystem{
			L1I:        l1i(),
			L1D:        l1d(),
			BusDelay:   busDelay,
			MemLatency: testMemCfg().Bound(),
		},
	}
	if withL2 {
		c := l2()
		sys.Mem.L2 = &c
	}
	return sys
}

func simCore(name string, prog *isa.Program) CoreConfig {
	return CoreConfig{Name: name, Prog: prog, Pipe: pipeline.DefaultConfig(), L1I: l1i(), L1D: l1d()}
}

var testPrograms = map[string]string{
	"countdown": `
        li   r1, 25
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`,
	"nested": `
        li   r1, 5
outer:  li   r2, 6
inner:  mul  r4, r2, r2
        add  r5, r5, r4
        addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`,
	"memwalk": `
        li   r1, 0x8000
        li   r3, 0x8100
loop:   ld   r2, 0(r1)
        add  r4, r4, r2
        st   r4, 0(r1)
        addi r1, r1, 4
        bne  r1, r3, loop
        halt`,
	"scalar": `
        li   r1, 0x9000
        li   r5, 30
loop:   ld   r2, 0(r1)
        addi r2, r2, 3
        st   r2, 0(r1)
        addi r5, r5, -1
        bne  r5, r0, loop
        halt`,
	"branchy": `
        li   r1, 18
loop:   andi r3, r1, 1
        beq  r3, r0, even
        mul  r4, r1, r1
        j    next
even:   add  r4, r4, r1
next:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`,
}

func prog(t *testing.T, name string) *isa.Program {
	t.Helper()
	src, ok := testPrograms[name]
	if !ok {
		t.Fatalf("no program %q", name)
	}
	return isa.MustAssemble(name, src)
}

func TestSingleCoreRunsToCompletion(t *testing.T) {
	for name := range testPrograms {
		p := prog(t, name)
		res, err := Run(System{Cores: []CoreConfig{simCore(name, p)}, Mem: testMemCfg()}, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Architectural agreement: retired counts match the reference
		// executor.
		st := isa.NewState(p)
		want, err := st.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats[0].Retired != want {
			t.Errorf("%s: retired %d, reference %d", name, res.Stats[0].Retired, want)
		}
		if res.Stats[0].Cycles <= int64(want) {
			t.Errorf("%s: cycles %d below retired count %d", name, res.Stats[0].Cycles, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := prog(t, "nested")
	sys := System{
		Cores:    []CoreConfig{simCore("a", p), simCore("b", prog(t, "memwalk"))},
		L2:       ptr(l2()),
		SharedL2: true,
		Bus:      arbiter.NewRoundRobin(2, 30),
		Mem:      testMemCfg(),
	}
	r1, err := Run(sys, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sys.Bus = arbiter.NewRoundRobin(2, 30) // fresh arbiter state
	r2, err := Run(sys, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Stats {
		if r1.Stats[i] != r2.Stats[i] {
			t.Errorf("core %d stats differ between runs:\n%+v\n%+v", i, r1.Stats[i], r2.Stats[i])
		}
	}
}

func ptr[T any](v T) *T { return &v }

// TestStaticWCETBoundsSimulation is the toolkit's central soundness
// property (survey §2.1): for every test program and several memory
// configurations, the static WCET must bound the simulated cycles.
func TestStaticWCETBoundsSimulation(t *testing.T) {
	for name := range testPrograms {
		for _, withL2 := range []bool{false, true} {
			p := prog(t, name)
			sys := System{Cores: []CoreConfig{simCore(name, p)}, Mem: testMemCfg()}
			if withL2 {
				sys.L2 = ptr(l2())
			}
			simRes, err := Run(sys, 10_000_000)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			a, err := core.Analyze(core.Task{Name: name, Prog: p}, staticSys(0, withL2))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if a.WCET < simRes.Cycles(0) {
				t.Errorf("%s (L2=%v): UNSOUND static WCET %d < simulated %d",
					name, withL2, a.WCET, simRes.Cycles(0))
			}
			// Sanity against gross over-estimation (documented slack).
			if a.WCET > simRes.Cycles(0)*25 {
				t.Errorf("%s (L2=%v): WCET %d implausibly loose vs sim %d",
					name, withL2, a.WCET, simRes.Cycles(0))
			}
		}
	}
}

// TestRoundRobinIsolation validates E12: with private L2s and a
// round-robin bus, the per-core static WCET computed with D = N·L−1 bounds
// the simulated time under any co-runner mix, and observed waits never
// exceed the bound.
func TestRoundRobinIsolation(t *testing.T) {
	names := []string{"memwalk", "scalar", "countdown", "nested"}
	for n := 2; n <= 4; n++ {
		lat := l2().HitLatency + testMemCfg().Bound()
		bus := arbiter.NewRoundRobin(n, lat)
		var cores []CoreConfig
		for i := 0; i < n; i++ {
			p := prog(t, names[i%len(names)])
			cc := simCore(fmt.Sprintf("c%d", i), p)
			cores = append(cores, cc)
		}
		sys := System{Cores: cores, L2: ptr(l2()), SharedL2: false, Bus: bus, Mem: testMemCfg()}
		simRes, err := Run(sys, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cores {
			if w := simRes.Stats[i].BusWaitMax; w > int64(bus.Bound(i)) {
				t.Errorf("n=%d core %d: observed wait %d exceeds bound %d", n, i, w, bus.Bound(i))
			}
			a, err := core.Analyze(core.Task{Name: cores[i].Name, Prog: cores[i].Prog},
				staticSys(bus.Bound(i), true))
			if err != nil {
				t.Fatal(err)
			}
			if a.WCET < simRes.Cycles(i) {
				t.Errorf("n=%d core %d: UNSOUND isolated WCET %d < simulated %d",
					n, i, a.WCET, simRes.Cycles(i))
			}
		}
	}
}

// TestTDMAIsolation: same soundness with a TDMA bus, using the coarse
// sum-of-other-slots bound the survey discusses for static analysis.
func TestTDMAIsolation(t *testing.T) {
	lat := l2().HitLatency + testMemCfg().Bound()
	bus := arbiter.NewTDMA([]arbiter.Slot{{Owner: 0, Len: lat}, {Owner: 1, Len: lat}}, lat)
	cores := []CoreConfig{
		simCore("a", prog(t, "memwalk")),
		simCore("b", prog(t, "scalar")),
	}
	sys := System{Cores: cores, L2: ptr(l2()), Bus: bus, Mem: testMemCfg()}
	simRes, err := Run(sys, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cores {
		if w := simRes.Stats[i].BusWaitMax; w > int64(bus.Bound(i)) {
			t.Errorf("core %d: observed wait %d exceeds exact TDMA bound %d", i, w, bus.Bound(i))
		}
		a, err := core.Analyze(core.Task{Name: cores[i].Name, Prog: cores[i].Prog},
			staticSys(bus.SumOfOtherSlots(i), true))
		if err != nil {
			t.Fatal(err)
		}
		if a.WCET < simRes.Cycles(i) {
			t.Errorf("core %d: UNSOUND TDMA WCET %d < simulated %d", i, a.WCET, simRes.Cycles(i))
		}
	}
}

// TestSharedL2InterferenceObservable reproduces the survey's §2.2 point:
// with a shared L2, co-runners slow a task down relative to running alone
// (the solo analysis assumption breaks).
func TestSharedL2InterferenceObservable(t *testing.T) {
	victim := prog(t, "scalar")
	// A thrashing co-runner rewriting many distinct lines.
	thrasher := isa.MustAssemble("thrash", `
        li   r1, 0xA000
        li   r3, 0xB000
loop:   st   r2, 0(r1)
        addi r1, r1, 32
        bne  r1, r3, loop
        halt`)
	smallL2 := cache.Config{Name: "L2", Sets: 8, Ways: 2, LineBytes: 32, HitLatency: 4}
	solo := System{
		Cores: []CoreConfig{simCore("victim", victim)},
		L2:    &smallL2, SharedL2: true, Mem: testMemCfg(),
	}
	soloRes, err := Run(solo, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	both := System{
		Cores:    []CoreConfig{simCore("victim", victim), simCore("thrash", thrasher)},
		L2:       &smallL2,
		SharedL2: true,
		Bus:      arbiter.NewRoundRobin(2, smallL2.HitLatency+testMemCfg().Bound()),
		Mem:      testMemCfg(),
	}
	bothRes, err := Run(both, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if bothRes.Cycles(0) <= soloRes.Cycles(0) {
		t.Errorf("co-runner did not slow the victim: solo %d, contended %d",
			soloRes.Cycles(0), bothRes.Cycles(0))
	}
}

// TestRandomizedSoundness fuzzes loop-nest programs and checks the static
// bound on every one.
func TestRandomizedSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		outer := 1 + rng.Intn(5)
		inner := 1 + rng.Intn(8)
		stride := 4 * (1 + rng.Intn(8))
		n := 4 + rng.Intn(12)
		src := fmt.Sprintf(`
        li   r1, %d
outer:  li   r2, %d
        li   r3, 0x8000
        li   r6, %d
inner:  ld   r4, 0(r3)
        add  r5, r5, r4
        st   r5, 0(r3)
        addi r3, r3, %d
        bne  r3, r6, inner
        addi r2, r2, -1
        bne  r2, r0, skip
skip:   addi r1, r1, -1
        bne  r1, r0, outer
        halt`, outer, inner, 0x8000+n*stride, stride)
		_ = inner
		p := isa.MustAssemble("fuzz", src)
		sys := System{Cores: []CoreConfig{simCore("fuzz", p)}, L2: ptr(l2()), Mem: testMemCfg()}
		simRes, err := Run(sys, 50_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		a, err := core.Analyze(core.Task{Name: "fuzz", Prog: p}, staticSys(0, true))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if a.WCET < simRes.Cycles(0) {
			t.Fatalf("trial %d: UNSOUND WCET %d < sim %d\n%s", trial, a.WCET, simRes.Cycles(0), src)
		}
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	p := prog(t, "nested")
	if _, err := Run(System{Cores: []CoreConfig{simCore("x", p)}, Mem: testMemCfg()}, 10); err == nil {
		t.Skip("program finished within tiny budget; guard untestable here")
	}
}

// TestMaxCyclesGuardAllHitLoop is the regression test for the simulator
// hang: a non-halting program whose accesses all hit in the L1s after
// warm-up never produces a bus transaction, so the old guard (applied
// only at bus-transaction selection) never fired and sim.Run looped
// forever. The budget must now abort the run from the retire path.
func TestMaxCyclesGuardAllHitLoop(t *testing.T) {
	spin := isa.MustAssemble("spin", `
loop:   addi r1, r1, 1
        add  r2, r2, r1
        j    loop`)
	_, err := Run(System{Cores: []CoreConfig{simCore("spin", spin)}, Mem: testMemCfg()}, 50_000)
	if err == nil {
		t.Fatal("non-halting all-hit program must exceed the cycle budget")
	}
	want := "exceeded 50000 cycles"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	// The same guard must also fire with a data working set that fits the
	// L1D (hits only after the first pass).
	spinMem := isa.MustAssemble("spinmem", `
        li   r7, 0x8000
loop:   ld   r3, 0(r7)
        addi r3, r3, 1
        st   r3, 0(r7)
        j    loop`)
	_, err = Run(System{Cores: []CoreConfig{simCore("spinmem", spinMem)}, Mem: testMemCfg()}, 50_000)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("all-hit load/store loop: got %v, want %q", err, want)
	}
}

// TestMaxCyclesKeepsCompletedRuns pins the guard's precision: a program
// that halts within the budget is unaffected, and its cycle count is
// identical to an unbounded run.
func TestMaxCyclesKeepsCompletedRuns(t *testing.T) {
	p := prog(t, "countdown")
	free, err := Run(System{Cores: []CoreConfig{simCore("c", p)}, Mem: testMemCfg()}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(System{Cores: []CoreConfig{simCore("c", p)}, Mem: testMemCfg()}, free.Cycles(0))
	if err != nil {
		t.Fatalf("run within exact budget must succeed: %v", err)
	}
	if tight.Cycles(0) != free.Cycles(0) {
		t.Fatalf("budget changed the result: %d vs %d", tight.Cycles(0), free.Cycles(0))
	}
}

// TestPerCoreL2Override covers the private-L2 override path: a core
// with a tiny private L2 view must observe more L2 misses than a core
// running the same program under the full geometry, and
// FromConfigPerCoreL2 must wire the views through.
func TestPerCoreL2Override(t *testing.T) {
	p := prog(t, "memwalk")
	small := cache.Config{Name: "L2p", Sets: 2, Ways: 1, LineBytes: 32, HitLatency: 4}
	sys := System{
		Cores: []CoreConfig{simCore("full", p), simCore("small", p)},
		L2:    ptr(l2()),
		Mem:   testMemCfg(),
	}
	sys.Cores[1].L2 = &small
	res, err := Run(sys, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[1].L2Misses <= res.Stats[0].L2Misses {
		t.Errorf("tiny private L2 view saw %d misses, full view %d — override not effective",
			res.Stats[1].L2Misses, res.Stats[0].L2Misses)
	}

	// The constructor plumbs per-core views; nil keeps the system L2.
	ssys := staticSys(0, true)
	tasks := []core.Task{{Name: "a", Prog: p}, {Name: "b", Prog: p}}
	built := FromConfigPerCoreL2(ssys, testMemCfg(), nil, tasks, []*cache.Config{nil, &small})
	if built.SharedL2 {
		t.Error("partitioned simulation must not share the L2")
	}
	if built.Cores[0].L2 != nil || built.Cores[1].L2 != &small {
		t.Errorf("per-core views not wired: %+v", built.Cores)
	}
	res2, err := Run(built, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats[1].L2Misses <= res2.Stats[0].L2Misses {
		t.Errorf("FromConfigPerCoreL2 override not effective: %d vs %d misses",
			res2.Stats[1].L2Misses, res2.Stats[0].L2Misses)
	}
}

// TestInitRegsSeedState: InitRegs must change architectural behavior
// exactly like pre-seeded registers in the reference executor, ignore
// the hardwired r0, and leave the zero-value config untouched.
func TestInitRegsSeedState(t *testing.T) {
	// Retired count is 2 + 3*r1: the loop body runs r1 times.
	p := isa.MustAssemble("inputloop", `
loop:   beq  r1, r0, done
        addi r1, r1, -1
        j    loop
done:   halt`)
	for _, r1 := range []int32{0, 7} {
		cc := simCore("c", p)
		// Entry 0 targets the hardwired zero register and must be ignored.
		cc.InitRegs = []int32{99, r1}
		res, err := Run(System{Cores: []CoreConfig{cc}, Mem: testMemCfg()}, 1_000_000)
		if err != nil {
			t.Fatalf("r1=%d: %v", r1, err)
		}
		want := uint64(2 + 3*r1)
		if res.Stats[0].Retired != want {
			t.Errorf("r1=%d: retired %d, want %d", r1, res.Stats[0].Retired, want)
		}
	}
	// Absent InitRegs is the all-zero seed.
	base, err := Run(System{Cores: []CoreConfig{simCore("c", p)}, Mem: testMemCfg()}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats[0].Retired != 2 {
		t.Errorf("zero-value config: retired %d, want 2", base.Stats[0].Retired)
	}
}

// TestWarmEstablishesInitialCacheState: pre-warmed lines must hit where
// a cold run misses, runs stay deterministic, and a warmed run of an
// in-order core never takes longer than the cold run.
func TestWarmEstablishesInitialCacheState(t *testing.T) {
	p := prog(t, "memwalk")
	cold, err := Run(System{Cores: []CoreConfig{simCore("m", p)}, Mem: testMemCfg()}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cc := simCore("m", p)
	for a := uint32(0x8000); a < 0x8100; a += uint32(cc.L1D.LineBytes) {
		cc.WarmD = append(cc.WarmD, a)
	}
	for a := p.Base; a < p.End(); a += uint32(cc.L1I.LineBytes) {
		cc.WarmI = append(cc.WarmI, a)
	}
	warm, err := Run(System{Cores: []CoreConfig{cc}, Mem: testMemCfg()}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats[0].L1DMisses >= cold.Stats[0].L1DMisses {
		t.Errorf("warmed L1D misses %d not below cold %d", warm.Stats[0].L1DMisses, cold.Stats[0].L1DMisses)
	}
	if warm.Stats[0].L1IMisses >= cold.Stats[0].L1IMisses {
		t.Errorf("warmed L1I misses %d not below cold %d", warm.Stats[0].L1IMisses, cold.Stats[0].L1IMisses)
	}
	if warm.Cycles(0) > cold.Cycles(0) {
		t.Errorf("warming slowed the run: warm %d > cold %d", warm.Cycles(0), cold.Cycles(0))
	}
	again, err := Run(System{Cores: []CoreConfig{cc}, Mem: testMemCfg()}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats[0] != warm.Stats[0] {
		t.Errorf("warmed run not deterministic:\n%+v\n%+v", warm.Stats[0], again.Stats[0])
	}
}

func TestStatspopulated(t *testing.T) {
	p := prog(t, "memwalk")
	sys := System{Cores: []CoreConfig{simCore("m", p)}, L2: ptr(l2()), Mem: testMemCfg()}
	res, err := Run(sys, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats[0]
	if s.L1DMisses == 0 || s.BusTrans == 0 {
		t.Errorf("expected misses and bus transactions: %+v", s)
	}
	if s.L2Hits+s.L2Misses != s.BusTrans {
		t.Errorf("L2 lookups %d != bus transactions %d", s.L2Hits+s.L2Misses, s.BusTrans)
	}
}
