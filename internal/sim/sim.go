// Package sim is the cycle-accurate execution substrate of paratime: a
// deterministic multicore simulator with in-order pipelined cores, real
// LRU caches, a shared bus under pluggable arbitration, and a banked
// memory controller.
//
// Each core evaluates exactly the max-plus pipeline recurrence of
// internal/pipeline with concrete (hit/miss resolved) latencies, so every
// static block cost upper-bounds its simulated instances by construction;
// cores interact only through the shared bus and shared L2, which the
// simulator serializes in global event order. The simulator is the ground
// truth against which every analytical bound in the toolkit is validated
// (and the vehicle for the survey's point that measurement-based timing
// analysis under-estimates on parallel architectures).
package sim

import (
	"fmt"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
)

// CoreConfig describes one core and its private resources.
type CoreConfig struct {
	Name string
	Prog *isa.Program
	Pipe pipeline.Config
	L1I  cache.Config
	L1D  cache.Config
	// L2 overrides the system L2 geometry for this core's private view
	// (cache partitioning experiments); nil uses the system L2 as-is.
	L2 *cache.Config

	// InitRegs overrides initial architectural register values: entry i
	// seeds register i (entries beyond the register file and the
	// hardwired r0 are ignored). The exhaustive explorer enumerates
	// input assignments through this field, and a witness replays by
	// carrying the exact assignment here.
	InitRegs []int32
	// WarmI and WarmD pre-touch addresses through the core's L1I
	// respectively L1D (and its L2 view) before cycle 0, establishing an
	// enumerated initial cache state. Warming is purely an initial-state
	// choice: it consumes no simulated time and no bus transactions.
	WarmI []uint32
	WarmD []uint32
}

// System is a complete multicore configuration.
type System struct {
	Cores []CoreConfig
	// L2 is the second-level cache; nil = misses go straight to memory.
	L2 *cache.Config
	// SharedL2 makes all cores hit one physical L2 (interference!);
	// otherwise each core gets a private L2 (its partition).
	SharedL2 bool
	// Bus arbitrates the path from the L1s to L2/memory; nil = private
	// path per core (no contention, zero wait).
	Bus arbiter.Arbiter
	// Mem is the memory device configuration.
	Mem memctrl.Config
}

// FromConfig assembles a multicore simulation where every core runs one
// task under the same single-core configuration. It is the one place
// the analysis-side core.SystemConfig is wired into simulation cores;
// the facade, the experiments, and the scenario runner all build their
// systems through it. Partitioning experiments that give cores distinct
// private L2 views use FromConfigPerCoreL2 instead.
func FromConfig(sys core.SystemConfig, mem memctrl.Config, bus arbiter.Arbiter, sharedL2 bool, tasks ...core.Task) System {
	s := System{L2: sys.Mem.L2, SharedL2: sharedL2, Bus: bus, Mem: mem}
	for _, t := range tasks {
		s.Cores = append(s.Cores, CoreConfig{
			Name: t.Name, Prog: t.Prog, Pipe: sys.Pipeline,
			L1I: sys.Mem.L1I, L1D: sys.Mem.L1D,
		})
	}
	return s
}

// FromConfigPerCoreL2 assembles a multicore simulation like FromConfig,
// but gives core i the private L2 geometry l2s[i] (nil falls back to the
// system L2): the simulation side of cache partitioning, where each
// core sees only its partition of the shared second level. The L2 is
// never shared, so partitioned cores cannot interfere.
func FromConfigPerCoreL2(sys core.SystemConfig, mem memctrl.Config, bus arbiter.Arbiter, tasks []core.Task, l2s []*cache.Config) System {
	s := FromConfig(sys, mem, bus, false, tasks...)
	for i := range s.Cores {
		if i < len(l2s) {
			s.Cores[i].L2 = l2s[i]
		}
	}
	return s
}

// CoreStats reports per-core observations.
type CoreStats struct {
	Cycles     int64 // retirement time of HALT
	Retired    uint64
	L1IHits    uint64
	L1IMisses  uint64
	L1DHits    uint64
	L1DMisses  uint64
	L2Hits     uint64
	L2Misses   uint64
	BusWaitMax int64
	BusWaitSum int64
	BusTrans   uint64
}

// Result is the outcome of one simulation.
type Result struct {
	Stats []CoreStats
}

// Cycles returns core i's completion time.
func (r *Result) Cycles(i int) int64 { return r.Stats[i].Cycles }

// MaxCycles returns the makespan.
func (r *Result) MaxCycles() int64 {
	var m int64
	for _, s := range r.Stats {
		if s.Cycles > m {
			m = s.Cycles
		}
	}
	return m
}

// phase of a core's in-flight instruction.
type phase uint8

const (
	phFetch phase = iota // waiting to resolve the instruction fetch
	phMem                // waiting to resolve the data access
)

// busNeed is a core's pending bus transaction.
type busNeed struct {
	addr uint32
	at   int64
	ph   phase
}

type coreRunner struct {
	id   int
	cfg  CoreConfig
	arch *isa.State
	l1i  *cache.LRU
	l1d  *cache.LRU
	l2   *cache.LRU // shared or private; nil without L2

	// Compiled pipeline model: the program's instructions lowered to the
	// same ops the static analysis executes, plus the config's EX-latency
	// table, so static and simulated pricing provably read identical
	// latencies.
	ops []pipeline.InstOp
	lt  pipeline.LatTable

	// maxCycles bounds simulated time; exceeding it while retiring aborts
	// the run (the guard that catches non-halting programs whose accesses
	// all hit in the L1s and thus never reach the bus-side check).
	maxCycles int64

	// Absolute pipeline recurrence state.
	prevIDs, prevEXs, prevMEMs, prevWBs, prevWBd int64
	ready                                        [isa.NumRegs]int64
	redirect                                     int64
	portFree                                     int64 // blocking miss port

	// In-flight instruction context.
	inst     isa.Inst
	op       pipeline.InstOp
	ifs, ifd int64
	mems     int64
	memLat   int64
	exd      int64 // EX completion (branch resolution)
	exsAbs   int64 // EX start

	stats CoreStats
	done  bool
}

// Runner execution: run() advances until a bus transaction is needed or
// the program halts; resume(doneAt) completes the pending access.
//
// The per-instruction recurrence evaluates the same compiled ops as
// pipeline.ExecBlock:
//
//	IFs = max(prevIDs, redirect); IFd = IFs + fetchLat
//	IDs = max(IFd, prevEXs); EXs = max(IDs+1, prevMEMs, ready[srcs])
//	MEMs = max(EXs+ex, prevWBs); WBs = max(MEMs+mem, prevWBd); WBd = WBs+1
func (c *coreRunner) run(sys *System) (*busNeed, error) {
	for !c.arch.Halted {
		switch {
		case c.inFlight():
			// resume() left a fully fetched instruction to finish.
		default:
			idx := c.arch.Prog.Index(c.arch.PC)
			if idx < 0 {
				return nil, fmt.Errorf("core %d: PC 0x%x outside text", c.id, c.arch.PC)
			}
			c.inst = c.arch.Prog.Insts[idx]
			c.op = c.ops[idx]
			c.ifs = max(c.prevIDs, c.redirect)
			if c.l1i.Access(c.arch.PC) {
				c.stats.L1IHits++
				c.ifd = c.ifs + int64(c.cfg.L1I.HitLatency)
			} else {
				c.stats.L1IMisses++
				// The blocking miss port serializes this core's
				// transactions: request when both the fetch is due and the
				// port is free.
				return &busNeed{addr: c.arch.PC, at: max(c.ifs, c.portFree), ph: phFetch}, nil
			}
		}
		need, err := c.finish(sys)
		if err != nil {
			return nil, err
		}
		if need != nil {
			return need, nil
		}
		// Every pass through here retired one instruction, advancing
		// simulated time by at least one cycle, so a non-halting program
		// trips the budget even when it never leaves the L1s. A program
		// that just halted is complete and keeps its result.
		if !c.arch.Halted && c.stats.Cycles > c.maxCycles {
			return nil, fmt.Errorf("sim: core %d exceeded %d cycles", c.id, c.maxCycles)
		}
	}
	c.done = true
	return nil, nil
}

// inFlight reports whether an instruction fetch has completed but the
// instruction has not retired (set by resume).
func (c *coreRunner) inFlight() bool { return c.ifd != 0 }

// finish completes the current instruction after its fetch resolved,
// possibly pausing at the data access.
func (c *coreRunner) finish(sys *System) (*busNeed, error) {
	in, op := c.inst, c.op
	if c.memLat == 0 { // data access not resolved yet
		ids := max(c.ifd, c.prevEXs)
		exs := max(ids+1, c.prevMEMs)
		for k := uint8(0); k < op.NSrc; k++ {
			if r := c.ready[op.Src[k]]; r > exs {
				exs = r
			}
		}
		ex := int64(c.lt[op.Class])
		c.mems = max(exs+ex, c.prevWBs)
		// Stash EX completion for redirect computation in retire().
		c.exd = exs + ex
		c.exsAbs = exs
		if op.Mem {
			addr := uint32(c.arch.Reg[in.Rs1] + in.Imm)
			if c.l1d.Access(addr) {
				c.stats.L1DHits++
				c.memLat = int64(c.cfg.L1D.HitLatency)
			} else {
				c.stats.L1DMisses++
				return &busNeed{addr: addr, at: max(c.mems, c.portFree), ph: phMem}, nil
			}
		} else {
			c.memLat = 1
		}
	}
	// Retire.
	wbs := max(c.mems+c.memLat, c.prevWBd)
	wbd := wbs + 1
	if op.HasDst {
		if op.Load {
			c.ready[op.Dst] = c.mems + c.memLat
		} else {
			c.ready[op.Dst] = c.exd
		}
	}
	c.prevIDs = max(c.ifd, c.prevEXs) // instruction left IF when entering ID
	c.prevEXs = c.exsAbs
	c.prevMEMs = c.mems
	c.prevWBs = wbs
	c.prevWBd = wbd

	prevPC := c.arch.PC
	if err := c.arch.Step(); err != nil {
		return nil, err
	}
	c.stats.Retired++
	if c.arch.PC != prevPC+isa.InstBytes && !c.arch.Halted {
		// Taken control transfer: redirect fetch.
		c.redirect = c.exd + int64(c.cfg.Pipe.BranchPenalty)
	}
	c.stats.Cycles = wbd
	// Clear in-flight markers.
	c.ifd, c.memLat, c.mems, c.exd, c.exsAbs = 0, 0, 0, 0, 0
	return nil, nil
}

// resume completes a bus transaction that finished at doneAt.
func (c *coreRunner) resume(need *busNeed, doneAt int64) {
	c.portFree = doneAt
	switch need.ph {
	case phFetch:
		c.ifd = doneAt
	case phMem:
		c.memLat = doneAt - c.mems
		if c.memLat < 1 {
			c.memLat = 1
		}
	}
}

// Run simulates the system to completion of every core.
func Run(sys System, maxCycles int64) (*Result, error) {
	if len(sys.Cores) == 0 {
		return nil, fmt.Errorf("sim: no cores")
	}
	ctrl := memctrl.New(sys.Mem)
	if sys.Bus != nil {
		sys.Bus.Reset()
	}
	var sharedL2 *cache.LRU
	if sys.L2 != nil && sys.SharedL2 {
		sharedL2 = cache.NewLRU(*sys.L2)
	}
	runners := make([]*coreRunner, len(sys.Cores))
	pending := make([]*busNeed, len(sys.Cores))
	for i, cc := range sys.Cores {
		r := &coreRunner{id: i, cfg: cc, arch: isa.NewState(cc.Prog), maxCycles: maxCycles}
		r.ops = pipeline.CompileOps(cc.Prog.Insts)
		r.lt = cc.Pipe.Latencies()
		r.l1i = cache.NewLRU(cc.L1I)
		r.l1d = cache.NewLRU(cc.L1D)
		switch {
		case sys.L2 == nil:
		case sys.SharedL2:
			r.l2 = sharedL2
		case cc.L2 != nil:
			r.l2 = cache.NewLRU(*cc.L2)
		default:
			r.l2 = cache.NewLRU(*sys.L2)
		}
		for reg, v := range cc.InitRegs {
			if reg > 0 && reg < isa.NumRegs {
				r.arch.Reg[reg] = v
			}
		}
		// Warm in core order (deterministic, including a shared L2).
		for _, a := range cc.WarmI {
			r.l1i.Access(a)
			if r.l2 != nil {
				r.l2.Access(a)
			}
		}
		for _, a := range cc.WarmD {
			r.l1d.Access(a)
			if r.l2 != nil {
				r.l2.Access(a)
			}
		}
		runners[i] = r
		need, err := r.run(&sys)
		if err != nil {
			return nil, err
		}
		pending[i] = need
	}
	for {
		// Pick the earliest pending transaction (ties by core id).
		sel := -1
		for i, need := range pending {
			if need == nil {
				continue
			}
			if sel < 0 || need.at < pending[sel].at {
				sel = i
			}
		}
		if sel < 0 {
			break // all cores done
		}
		need := pending[sel]
		r := runners[sel]
		if need.at > maxCycles {
			return nil, fmt.Errorf("sim: core %d exceeded %d cycles", sel, maxCycles)
		}
		grant := need.at
		if sys.Bus != nil {
			grant = sys.Bus.Request(sel, need.at)
		}
		wait := grant - need.at
		r.stats.BusTrans++
		r.stats.BusWaitSum += wait
		if wait > r.stats.BusWaitMax {
			r.stats.BusWaitMax = wait
		}
		// Service: L2 lookup then memory on miss.
		var done int64
		if r.l2 != nil {
			afterL2 := grant + int64(r.l2.Config().HitLatency)
			if r.l2.Access(need.addr) {
				r.stats.L2Hits++
				done = afterL2
			} else {
				r.stats.L2Misses++
				done = ctrl.Access(need.addr, afterL2)
			}
		} else {
			done = ctrl.Access(need.addr, grant)
		}
		r.resume(need, done)
		next, err := r.run(&sys)
		if err != nil {
			return nil, err
		}
		pending[sel] = next
	}
	res := &Result{Stats: make([]CoreStats, len(runners))}
	for i, r := range runners {
		if !r.done {
			return nil, fmt.Errorf("sim: core %d did not halt", i)
		}
		res.Stats[i] = r.stats
	}
	return res, nil
}
