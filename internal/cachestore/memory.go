package cachestore

import (
	"container/list"
	"sync"
)

// Memory is a size-bounded in-process LRU cache over arbitrary values.
// It is the default engine memo store (where it holds live prepared
// analyses) and the front tier of the service's result cache.
type Memory struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	admit    int64      // largest admissible single payload (0 = maxBytes)
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	stats    Stats
}

type memEntry struct {
	key string
	val any
}

// NewMemory returns a memory backend holding at most capacity entries;
// capacity <= 0 is unbounded. When full, Put evicts the least recently
// used entry.
func NewMemory(capacity int) *Memory {
	return NewMemorySized(capacity, 0)
}

// NewMemorySized returns a memory backend bounded both by entry count
// (capacity <= 0: unbounded) and by payload bytes (maxBytes <= 0:
// unbounded). The byte bound counts []byte payloads only, like
// Stats.Bytes; a single payload larger than maxBytes is declined
// outright rather than evicting the whole cache to make room for it.
func NewMemorySized(capacity int, maxBytes int64) *Memory {
	return NewMemorySizedAdmit(capacity, maxBytes, 1)
}

// NewMemorySizedAdmit is NewMemorySized with an admission policy: a
// single payload larger than admitFrac × maxBytes is declined outright
// instead of admitted by evicting a large slice of the tier. One
// oversized entry can otherwise push out many small hot ones whose
// aggregate hit value exceeds its own — the classic cache-pollution
// trade. admitFrac is clamped to (0, 1]; values <= 0 or > 1 (and any
// admitFrac when maxBytes is unbounded) select the plain maxBytes
// bound. Declined payloads are counted as Puts and leave the cache,
// including any previous value under the key, untouched.
func NewMemorySizedAdmit(capacity int, maxBytes int64, admitFrac float64) *Memory {
	m := &Memory{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
	if maxBytes > 0 && admitFrac > 0 && admitFrac <= 1 {
		m.admit = int64(admitFrac * float64(maxBytes))
		if m.admit < 1 {
			m.admit = 1
		}
	}
	return m
}

// Cap returns the entry bound (0 = unbounded).
func (m *Memory) Cap() int {
	if m.cap <= 0 {
		return 0
	}
	return m.cap
}

// MaxBytes returns the payload byte bound (0 = unbounded).
func (m *Memory) MaxBytes() int64 {
	if m.maxBytes <= 0 {
		return 0
	}
	return m.maxBytes
}

// Get returns the value cached under key, marking it most recently used.
func (m *Memory) Get(key string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).val, true
}

// Put stores val under key, evicting least recently used entries until
// both the capacity and byte bounds hold again (updates that grow an
// entry evict too). A payload that alone exceeds the admission limit —
// admitFrac × maxBytes, or all of maxBytes without an admission
// policy — is declined: the cache, including any previous value under
// the key, stays as it is.
func (m *Memory) Put(key string, val any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	limit := m.admit
	if limit == 0 {
		limit = m.maxBytes
	}
	if limit > 0 && sizeOf(val) > limit {
		return
	}
	if el, ok := m.items[key]; ok {
		ent := el.Value.(*memEntry)
		m.stats.Bytes += sizeOf(val) - sizeOf(ent.val)
		ent.val = val
		m.ll.MoveToFront(el)
		m.evictLocked()
		return
	}
	m.items[key] = m.ll.PushFront(&memEntry{key: key, val: val})
	m.stats.Bytes += sizeOf(val)
	m.evictLocked()
}

// evictLocked drops LRU entries until both bounds hold, then refreshes
// the high-water marks. The most recently used entry is never evicted
// (oversized payloads were declined before insertion, so the bounds are
// always reachable without it).
func (m *Memory) evictLocked() {
	for m.ll.Len() > 1 &&
		((m.cap > 0 && m.ll.Len() > m.cap) || (m.maxBytes > 0 && m.stats.Bytes > m.maxBytes)) {
		oldest := m.ll.Back()
		ent := oldest.Value.(*memEntry)
		m.ll.Remove(oldest)
		delete(m.items, ent.key)
		m.stats.Bytes -= sizeOf(ent.val)
		m.stats.Evictions++
	}
	m.stats.Entries = m.ll.Len()
	if m.stats.Entries > m.stats.Peak {
		m.stats.Peak = m.stats.Entries
	}
	if m.stats.Bytes > m.stats.PeakBytes {
		m.stats.PeakBytes = m.stats.Bytes
	}
}

// Stats returns the backend's counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Entries = m.ll.Len()
	return st
}

// Reset drops every entry while keeping the statistics counters.
func (m *Memory) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ll = list.New()
	m.items = map[string]*list.Element{}
	m.stats.Entries = 0
	m.stats.Bytes = 0
}

// Close drops every entry.
func (m *Memory) Close() error {
	m.Reset()
	return nil
}

func sizeOf(val any) int64 {
	if b, ok := val.([]byte); ok {
		return int64(len(b))
	}
	return 0
}
