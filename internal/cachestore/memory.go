package cachestore

import (
	"container/list"
	"sync"
)

// Memory is a size-bounded in-process LRU cache over arbitrary values.
// It is the default engine memo store (where it holds live prepared
// analyses) and the front tier of the service's result cache.
type Memory struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats
}

type memEntry struct {
	key string
	val any
}

// NewMemory returns a memory backend holding at most capacity entries;
// capacity <= 0 is unbounded. When full, Put evicts the least recently
// used entry.
func NewMemory(capacity int) *Memory {
	return &Memory{
		cap:   capacity,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
}

// Cap returns the entry bound (0 = unbounded).
func (m *Memory) Cap() int {
	if m.cap <= 0 {
		return 0
	}
	return m.cap
}

// Get returns the value cached under key, marking it most recently used.
func (m *Memory) Get(key string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).val, true
}

// Put stores val under key, evicting the least recently used entries
// beyond the capacity bound.
func (m *Memory) Put(key string, val any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if el, ok := m.items[key]; ok {
		ent := el.Value.(*memEntry)
		m.stats.Bytes += sizeOf(val) - sizeOf(ent.val)
		ent.val = val
		m.ll.MoveToFront(el)
		return
	}
	m.items[key] = m.ll.PushFront(&memEntry{key: key, val: val})
	m.stats.Bytes += sizeOf(val)
	for m.cap > 0 && m.ll.Len() > m.cap {
		oldest := m.ll.Back()
		ent := oldest.Value.(*memEntry)
		m.ll.Remove(oldest)
		delete(m.items, ent.key)
		m.stats.Bytes -= sizeOf(ent.val)
		m.stats.Evictions++
	}
	m.stats.Entries = m.ll.Len()
	if m.stats.Entries > m.stats.Peak {
		m.stats.Peak = m.stats.Entries
	}
}

// Stats returns the backend's counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Entries = m.ll.Len()
	return st
}

// Reset drops every entry while keeping the statistics counters.
func (m *Memory) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ll = list.New()
	m.items = map[string]*list.Element{}
	m.stats.Entries = 0
	m.stats.Bytes = 0
}

// Close drops every entry.
func (m *Memory) Close() error {
	m.Reset()
	return nil
}

func sizeOf(val any) int64 {
	if b, ok := val.([]byte); ok {
		return int64(len(b))
	}
	return 0
}
