package cachestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Disk file format: every entry is one content-addressed file named
// sha256(key) + ".pce" holding a self-verifying record. The full key is
// stored in the record, so a filename collision (or a renamed file) can
// never serve a value under the wrong key, and the payload digest makes
// truncation or bit rot a miss instead of a wrong answer.
const (
	diskMagic   = "PTCACHE\x00"
	diskVersion = 1
	diskExt     = ".pce" // "paratime cache entry"
)

// maxDiskKeyLen bounds the stored key; longer keys are declined (the
// fingerprint and PrepareKey keys in this codebase are far shorter).
const maxDiskKeyLen = 1 << 20

// Disk is a persistent content-addressed cache of []byte payloads in one
// flat directory. Values that are not []byte are declined (counted as
// Puts, never stored): live analysis objects cannot round-trip through a
// file, and the deterministic pipeline makes recomputing them safe.
// Every read is integrity-checked; corrupt, truncated, foreign or
// version-mismatched files are treated as misses and removed.
type Disk struct {
	dir   string
	mu    sync.Mutex
	stats Stats
}

// NewDisk opens (creating if needed) a disk backend rooted at dir.
// Entries written by previous processes are served after the usual
// per-read integrity check.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	d := &Disk{dir: dir}
	// Count pre-existing entries for the stats surface; Get verifies
	// each one's integrity when it is actually read.
	glob, err := filepath.Glob(filepath.Join(dir, "*"+diskExt))
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	for _, p := range glob {
		if info, err := os.Stat(p); err == nil {
			d.stats.Entries++
			d.stats.Bytes += info.Size()
		}
	}
	d.stats.Peak = d.stats.Entries
	return d, nil
}

// Dir returns the cache directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+diskExt)
}

// encode renders one self-verifying entry record.
func encode(key string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(diskMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], diskVersion)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	buf.Write(u32[:])
	buf.WriteString(key)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	return buf.Bytes()
}

// decode parses and verifies an entry record against the key it was
// looked up under. Any mismatch — magic, version, key, length, digest —
// fails decoding and is treated by Get as a miss.
func decode(key string, data []byte) ([]byte, bool) {
	rest := data
	take := func(n int) ([]byte, bool) {
		if len(rest) < n {
			return nil, false
		}
		out := rest[:n]
		rest = rest[n:]
		return out, true
	}
	magic, ok := take(len(diskMagic))
	if !ok || string(magic) != diskMagic {
		return nil, false
	}
	ver, ok := take(4)
	if !ok || binary.LittleEndian.Uint32(ver) != diskVersion {
		return nil, false
	}
	klen, ok := take(4)
	if !ok {
		return nil, false
	}
	k, ok := take(int(binary.LittleEndian.Uint32(klen)))
	if !ok || string(k) != key {
		return nil, false
	}
	sum, ok := take(sha256.Size)
	if !ok {
		return nil, false
	}
	plen, ok := take(8)
	if !ok {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(plen)
	if uint64(len(rest)) != n {
		return nil, false
	}
	if got := sha256.Sum256(rest); !bytes.Equal(got[:], sum) {
		return nil, false
	}
	return rest, true
}

// Get returns the []byte payload cached under key. A missing, corrupt or
// version-mismatched file is a miss; bad files are removed so they are
// not re-parsed on every lookup.
func (d *Disk) Get(key string) (any, bool) {
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	payload, ok := decode(key, data)
	if !ok {
		_ = os.Remove(path)
		d.count(func(s *Stats) {
			s.Misses++
			if s.Entries > 0 {
				s.Entries--
			}
			s.Bytes -= int64(len(data))
		})
		return nil, false
	}
	d.count(func(s *Stats) { s.Hits++ })
	return payload, true
}

// Put stores a []byte payload under key via an atomic temp-file rename;
// non-[]byte and oversized-key values are declined.
func (d *Disk) Put(key string, val any) {
	payload, ok := val.([]byte)
	if !ok || len(key) > maxDiskKeyLen {
		d.count(func(s *Stats) { s.Puts++ })
		return
	}
	path := d.path(key)
	record := encode(key, payload)
	prev := int64(-1)
	if info, err := os.Stat(path); err == nil {
		prev = info.Size()
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		d.count(func(s *Stats) { s.Puts++ })
		return
	}
	_, werr := tmp.Write(record)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), path) != nil {
		_ = os.Remove(tmp.Name())
		d.count(func(s *Stats) { s.Puts++ })
		return
	}
	d.count(func(s *Stats) {
		s.Puts++
		if prev < 0 {
			s.Entries++
			if s.Entries > s.Peak {
				s.Peak = s.Entries
			}
		} else {
			s.Bytes -= prev
		}
		s.Bytes += int64(len(record))
	})
}

// Stats returns the backend's counters. Entries and Bytes count whole
// entry files (headers included).
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Reset removes every cache entry file while keeping the statistics
// counters.
func (d *Disk) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	glob, _ := filepath.Glob(filepath.Join(d.dir, "*"+diskExt))
	for _, p := range glob {
		if strings.HasSuffix(p, diskExt) {
			_ = os.Remove(p)
		}
	}
	d.stats.Entries = 0
	d.stats.Bytes = 0
}

// Close is a no-op: entries persist for the next process.
func (d *Disk) Close() error { return nil }

func (d *Disk) count(f func(*Stats)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(&d.stats)
}
