// Package cachestore provides the pluggable result-cache backends behind
// the analysis service and the batch engine's Prepare memo. WCET analysis
// is deterministic — the same scenario or prepared-analysis key always
// produces the same artefact — so identical requests are perfectly
// cacheable, and the only interesting questions are where the cache lives
// (process memory, disk, both) and how it is bounded.
//
// Three backends implement one CacheBackend interface:
//
//   - Memory: a size-bounded LRU over arbitrary in-process values
//     (the engine stores live *core.Analysis memo entries in it).
//   - Disk: a persistent content-addressed store for []byte payloads,
//     with an integrity check on every read — corrupt, truncated or
//     version-mismatched entries are misses, never errors — so a warm
//     restart can trust whatever it finds in the cache directory.
//   - TwoTier: a memory tier in front of a disk tier; disk hits are
//     promoted into memory.
//
// Backends are safe for concurrent use and keep hit/miss/eviction
// statistics for the service's /v1/stats endpoint.
package cachestore

// Stats reports one backend's counters. Counters are cumulative over the
// backend's lifetime (Reset drops entries but keeps counters, so
// hit-ratio accounting survives cache clears).
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts store attempts, including ones the backend declined
	// (the disk backend persists only []byte payloads).
	Puts uint64 `json:"puts"`
	// Evictions counts entries dropped to honor a size bound.
	Evictions uint64 `json:"evictions,omitempty"`
	// Entries is the current entry count; Peak is its high-water mark.
	Entries int `json:"entries"`
	Peak    int `json:"peak,omitempty"`
	// Bytes is the payload bytes currently held ([]byte values only;
	// live-object values held by the memory backend are not sized).
	// PeakBytes is its high-water mark after eviction, i.e. the most the
	// backend has ever retained — the number a byte bound actually caps.
	Bytes     int64 `json:"bytes,omitempty"`
	PeakBytes int64 `json:"peakBytes,omitempty"`
}

// CacheBackend is a pluggable key-value result cache. Implementations
// must be safe for concurrent use. Get/Put never fail: a backend that
// cannot satisfy a lookup (missing, corrupt, wrong type for the medium)
// reports a miss, and one that cannot hold a value declines it silently —
// callers must always be prepared to recompute, which deterministic
// analysis makes safe.
type CacheBackend interface {
	// Get returns the value cached under key.
	Get(key string) (any, bool)
	// Put stores val under key, replacing any previous value. Backends
	// may decline values they cannot hold (the disk backend persists
	// only []byte).
	Put(key string, val any)
	// Stats returns the backend's counters.
	Stats() Stats
	// Close releases the backend's resources; entries of persistent
	// backends survive it.
	Close() error
}

// Resetter is the optional interface for backends that can drop every
// entry while keeping their statistics counters (the engine's Reset uses
// it to bound memory between unrelated sweeps).
type Resetter interface {
	Reset()
}
