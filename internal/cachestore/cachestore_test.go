package cachestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(2)
	m.Put("a", 1)
	m.Put("b", 2)
	if _, ok := m.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing before capacity hit")
	}
	m.Put("c", 3) // evicts b, the least recently used
	if _, ok := m.Get("b"); ok {
		t.Error("b survived eviction; LRU order not honored")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := m.Get(k); !ok {
			t.Errorf("%s missing after eviction of b", k)
		}
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Peak != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries, peak 2", st)
	}
}

func TestMemoryCapOneAndUnbounded(t *testing.T) {
	one := NewMemory(1)
	for i := 0; i < 10; i++ {
		one.Put(fmt.Sprint(i), i)
	}
	if st := one.Stats(); st.Entries != 1 || st.Peak != 1 || st.Evictions != 9 {
		t.Errorf("cap-1 stats = %+v", st)
	}
	unb := NewMemory(0)
	for i := 0; i < 100; i++ {
		unb.Put(fmt.Sprint(i), i)
	}
	if st := unb.Stats(); st.Entries != 100 || st.Evictions != 0 {
		t.Errorf("unbounded stats = %+v", st)
	}
}

func TestMemoryUpdateExisting(t *testing.T) {
	m := NewMemory(2)
	m.Put("k", []byte("12345"))
	m.Put("k", []byte("123"))
	st := m.Stats()
	if st.Entries != 1 || st.Bytes != 3 {
		t.Errorf("stats = %+v, want 1 entry of 3 bytes", st)
	}
	v, ok := m.Get("k")
	if !ok || string(v.([]byte)) != "123" {
		t.Errorf("Get after update = %v, %v", v, ok)
	}
}

func TestMemoryResetKeepsCounters(t *testing.T) {
	m := NewMemory(0)
	m.Put("k", 1)
	m.Get("k")
	m.Get("absent")
	m.Reset()
	st := m.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("entries/bytes not dropped: %+v", st)
	}
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("counters not kept: %+v", st)
	}
	if _, ok := m.Get("k"); ok {
		t.Error("entry survived Reset")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("payload bytes\x00with binary\xff")
	d.Put("some/key|with|structure", want)
	v, ok := d.Get("some/key|with|structure")
	if !ok {
		t.Fatal("put entry missing")
	}
	if !bytes.Equal(v.([]byte), want) {
		t.Errorf("payload = %q, want %q", v, want)
	}
	if _, ok := d.Get("other key"); ok {
		t.Error("unrelated key hit")
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put("k", []byte("persisted"))
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Entries != 1 {
		t.Errorf("reopened entries = %d, want 1", st.Entries)
	}
	v, ok := d2.Get("k")
	if !ok || string(v.([]byte)) != "persisted" {
		t.Fatalf("entry did not survive reopen: %v, %v", v, ok)
	}
}

func TestDiskDeclinesNonBytes(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", struct{ X int }{1})
	if _, ok := d.Get("k"); ok {
		t.Error("non-[]byte value was persisted")
	}
	if st := d.Stats(); st.Puts != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want declined put", st)
	}
}

// entryPath returns the single entry file of a one-entry disk cache.
func entryPath(t *testing.T, d *Disk) string {
	t.Helper()
	glob, err := filepath.Glob(filepath.Join(d.Dir(), "*"+diskExt))
	if err != nil || len(glob) != 1 {
		t.Fatalf("glob = %v, %v; want one entry file", glob, err)
	}
	return glob[0]
}

func TestDiskCorruptPayloadIsMiss(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", []byte("payload"))
	path := entryPath(t, d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file not removed")
	}
}

func TestDiskTruncatedIsMiss(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", []byte("a longer payload to truncate"))
	path := entryPath(t, d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Error("truncated entry served")
	}
}

func TestDiskVersionMismatchIsMiss(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", []byte("payload"))
	path := entryPath(t, d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[len(diskMagic):], diskVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Error("version-mismatched entry served")
	}
}

// TestDiskWrongKeyIsMiss simulates a filename collision / renamed file:
// a record whose embedded key differs from the lookup key must miss even
// though the file exists at the looked-up path.
func TestDiskWrongKeyIsMiss(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("original", []byte("payload"))
	src := entryPath(t, d)
	if err := os.Rename(src, d.path("imposter")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("imposter"); ok {
		t.Error("record with foreign embedded key served")
	}
}

func TestDiskReset(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("a", []byte("1"))
	d.Put("b", []byte("2"))
	d.Reset()
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after Reset = %+v", st)
	}
	if _, ok := d.Get("a"); ok {
		t.Error("entry survived Reset")
	}
}

func TestTwoTierPromotion(t *testing.T) {
	mem := NewMemory(4)
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tt := NewTwoTier(mem, disk)
	tt.Put("k", []byte("v"))
	if st := mem.Stats(); st.Entries != 1 {
		t.Error("write-through skipped the front tier")
	}
	if st := disk.Stats(); st.Entries != 1 {
		t.Error("write-through skipped the back tier")
	}
	mem.Reset() // cold front tier, warm back tier (the warm-restart shape)
	v, ok := tt.Get("k")
	if !ok || string(v.([]byte)) != "v" {
		t.Fatalf("back-tier Get = %v, %v", v, ok)
	}
	if st := mem.Stats(); st.Entries != 1 {
		t.Error("back-tier hit not promoted into the front tier")
	}
	if v, ok := tt.Get("k"); !ok || string(v.([]byte)) != "v" {
		t.Fatalf("promoted Get = %v, %v", v, ok)
	}
	if st := disk.Stats(); st.Hits != 1 {
		t.Errorf("disk hits = %d, want 1 (second Get should stay in memory)", st.Hits)
	}
	st := tt.Stats()
	if st.Hits != 2 || st.Misses != 0 || st.Puts != 1 {
		t.Errorf("two-tier stats = %+v", st)
	}
	if _, ok := tt.Get("absent"); ok || tt.Stats().Misses != 1 {
		t.Error("two-tier miss accounting")
	}
}

// TestTwoTierHoldsLiveObjects: non-[]byte values live in the front tier
// only (the engine memo shape); the back tier declines them.
func TestTwoTierHoldsLiveObjects(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tt := NewTwoTier(mem, disk)
	type live struct{ X int }
	tt.Put("k", &live{X: 7})
	v, ok := tt.Get("k")
	if !ok || v.(*live).X != 7 {
		t.Fatalf("live object Get = %v, %v", v, ok)
	}
	if st := disk.Stats(); st.Entries != 0 {
		t.Error("back tier persisted a live object")
	}
}

func TestConcurrentBackends(t *testing.T) {
	backends := map[string]CacheBackend{
		"memory": NewMemory(16),
	}
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backends["disk"] = d
	d2, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backends["twotier"] = NewTwoTier(NewMemory(8), d2)
	for name, b := range backends {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprint(i % 20)
						b.Put(key, []byte(key))
						if v, ok := b.Get(key); ok {
							if string(v.([]byte)) != key {
								t.Errorf("key %s returned %q", key, v)
							}
						}
					}
				}(g)
			}
			wg.Wait()
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
