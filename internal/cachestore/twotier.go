package cachestore

import (
	"errors"
	"sync/atomic"
)

// TwoTier composes a fast front tier (typically Memory) over a larger,
// usually persistent back tier (typically Disk). Gets hit the front tier
// first; back-tier hits are promoted into the front tier so repeated
// lookups stay in memory. Puts write through to both tiers — the front
// tier serves the hot set, the back tier survives restarts.
type TwoTier struct {
	front, back CacheBackend

	hits, misses, puts atomic.Uint64
}

// NewTwoTier returns a two-tier composition of front over back.
func NewTwoTier(front, back CacheBackend) *TwoTier {
	return &TwoTier{front: front, back: back}
}

// Front returns the front (memory) tier.
func (t *TwoTier) Front() CacheBackend { return t.front }

// Back returns the back (persistent) tier.
func (t *TwoTier) Back() CacheBackend { return t.back }

// Get returns the value under key from the first tier that holds it,
// promoting back-tier hits into the front tier.
func (t *TwoTier) Get(key string) (any, bool) {
	if v, ok := t.front.Get(key); ok {
		t.hits.Add(1)
		return v, true
	}
	if v, ok := t.back.Get(key); ok {
		t.front.Put(key, v)
		t.hits.Add(1)
		return v, true
	}
	t.misses.Add(1)
	return nil, false
}

// Put writes val through to both tiers.
func (t *TwoTier) Put(key string, val any) {
	t.puts.Add(1)
	t.front.Put(key, val)
	t.back.Put(key, val)
}

// Stats returns the composition's logical counters (a Get that hits
// either tier is one hit) plus the summed entry/byte footprint of both
// tiers; a written-through entry present in both tiers counts twice.
// Per-tier detail is available via Front().Stats() and Back().Stats().
func (t *TwoTier) Stats() Stats {
	f, b := t.front.Stats(), t.back.Stats()
	return Stats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Puts:      t.puts.Load(),
		Evictions: f.Evictions + b.Evictions,
		Entries:   f.Entries + b.Entries,
		Peak:      f.Peak + b.Peak,
		Bytes:     f.Bytes + b.Bytes,
	}
}

// Reset drops every entry in tiers that support it, keeping counters.
func (t *TwoTier) Reset() {
	if r, ok := t.front.(Resetter); ok {
		r.Reset()
	}
	if r, ok := t.back.(Resetter); ok {
		r.Reset()
	}
}

// Close closes both tiers.
func (t *TwoTier) Close() error {
	return errors.Join(t.front.Close(), t.back.Close())
}
