package cachestore

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMemoryByteBoundFlood: under a flood of large payloads the byte
// high-water mark stays within the configured bound — the scenario the
// serve verb's response cache faces with NDJSON streams of wildly
// varying size.
func TestMemoryByteBoundFlood(t *testing.T) {
	const maxBytes = 64 << 10
	m := NewMemorySized(0, maxBytes)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		payload := make([]byte, 1+rng.Intn(maxBytes/4))
		m.Put(fmt.Sprintf("k%d", i%64), payload) // mixes inserts and updates
		if st := m.Stats(); st.Bytes > maxBytes {
			t.Fatalf("put %d: live bytes %d exceed bound %d", i, st.Bytes, maxBytes)
		}
	}
	st := m.Stats()
	if st.PeakBytes > maxBytes {
		t.Fatalf("peak bytes %d exceed bound %d", st.PeakBytes, maxBytes)
	}
	if st.PeakBytes == 0 || st.Evictions == 0 {
		t.Fatalf("flood recorded no peak (%d) or evictions (%d)", st.PeakBytes, st.Evictions)
	}
	if m.MaxBytes() != maxBytes {
		t.Fatalf("MaxBytes() = %d, want %d", m.MaxBytes(), maxBytes)
	}
}

// TestMemoryByteBoundDeclinesOversized: one payload larger than the
// whole bound is declined outright, leaving the cache — including a
// previous value under the same key — untouched.
func TestMemoryByteBoundDeclinesOversized(t *testing.T) {
	m := NewMemorySized(0, 100)
	m.Put("a", make([]byte, 40))
	m.Put("a", make([]byte, 200)) // declined: previous value survives
	if v, ok := m.Get("a"); !ok || len(v.([]byte)) != 40 {
		t.Fatalf("oversized update clobbered the entry: ok=%v", ok)
	}
	m.Put("big", make([]byte, 101))
	if _, ok := m.Get("big"); ok {
		t.Fatal("oversized insert was cached")
	}
	if st := m.Stats(); st.Bytes != 40 {
		t.Fatalf("live bytes %d, want 40", st.Bytes)
	}
}

// TestMemoryByteBoundUpdateEvicts: growing an existing entry evicts LRU
// entries until the bound holds again.
func TestMemoryByteBoundUpdateEvicts(t *testing.T) {
	m := NewMemorySized(0, 100)
	m.Put("a", make([]byte, 40))
	m.Put("b", make([]byte, 40))
	m.Put("b", make([]byte, 90)) // grows b; must evict a
	if _, ok := m.Get("a"); ok {
		t.Fatal("a survived an update-path eviction")
	}
	if v, ok := m.Get("b"); !ok || len(v.([]byte)) != 90 {
		t.Fatal("grown entry b missing")
	}
	if st := m.Stats(); st.Bytes != 90 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 90 bytes and 1 eviction", st)
	}
}

// TestMemoryAdmitFractionDeclines: with an admission policy, a payload
// larger than admitFrac × maxBytes is declined even though it would fit
// the byte bound, and the hot set it would have displaced survives.
func TestMemoryAdmitFractionDeclines(t *testing.T) {
	m := NewMemorySizedAdmit(0, 1000, 0.25)
	for i := 0; i < 8; i++ {
		m.Put(fmt.Sprintf("hot%d", i), make([]byte, 100))
	}
	m.Put("huge", make([]byte, 600)) // fits maxBytes, exceeds 0.25*1000
	if _, ok := m.Get("huge"); ok {
		t.Fatal("payload above the admission limit was cached")
	}
	for i := 0; i < 8; i++ {
		if _, ok := m.Get(fmt.Sprintf("hot%d", i)); !ok {
			t.Fatalf("hot%d was evicted by a declined payload", i)
		}
	}
	if st := m.Stats(); st.Bytes != 800 || st.Evictions != 0 {
		t.Fatalf("stats %+v, want 800 bytes and 0 evictions", st)
	}
}

// TestMemoryAdmitFractionBoundary: a payload exactly at the admission
// limit is admitted; one byte more is declined. A declined update leaves
// the previous value under the key untouched.
func TestMemoryAdmitFractionBoundary(t *testing.T) {
	m := NewMemorySizedAdmit(0, 1000, 0.25)
	m.Put("at", make([]byte, 250))
	if v, ok := m.Get("at"); !ok || len(v.([]byte)) != 250 {
		t.Fatal("payload at the admission limit was declined")
	}
	m.Put("at", make([]byte, 251)) // declined: previous value survives
	if v, ok := m.Get("at"); !ok || len(v.([]byte)) != 250 {
		t.Fatalf("declined update clobbered the entry: ok=%v", ok)
	}
}

// TestMemoryAdmitFractionDegenerate: fractions outside (0, 1] and an
// unbounded byte budget fall back to the plain maxBytes behavior.
func TestMemoryAdmitFractionDegenerate(t *testing.T) {
	for _, frac := range []float64{0, -1, 1.5} {
		m := NewMemorySizedAdmit(0, 100, frac)
		m.Put("a", make([]byte, 100))
		if _, ok := m.Get("a"); !ok {
			t.Fatalf("frac=%v: payload at maxBytes was declined", frac)
		}
		m.Put("b", make([]byte, 101))
		if _, ok := m.Get("b"); ok {
			t.Fatalf("frac=%v: payload above maxBytes was cached", frac)
		}
	}
	// Unbounded bytes: any fraction admits everything.
	m := NewMemorySizedAdmit(0, 0, 0.25)
	m.Put("big", make([]byte, 1<<20))
	if _, ok := m.Get("big"); !ok {
		t.Fatal("unbounded cache declined a payload")
	}
	// Tiny budgets never round the admission limit down to zero.
	m = NewMemorySizedAdmit(0, 2, 0.25)
	m.Put("one", make([]byte, 1))
	if _, ok := m.Get("one"); !ok {
		t.Fatal("1-byte payload declined under a tiny budget")
	}
}

// TestMemoryByteBoundKeepsNewest: the most recently used entry is never
// evicted, even when it alone sits at the bound.
func TestMemoryByteBoundKeepsNewest(t *testing.T) {
	m := NewMemorySized(0, 100)
	m.Put("a", make([]byte, 60))
	m.Put("b", make([]byte, 100)) // evicts a, keeps b exactly at bound
	if _, ok := m.Get("b"); !ok {
		t.Fatal("newest entry evicted")
	}
	if st := m.Stats(); st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats %+v, want 1 entry of 100 bytes", st)
	}
}
