package cachestore

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMemoryByteBoundFlood: under a flood of large payloads the byte
// high-water mark stays within the configured bound — the scenario the
// serve verb's response cache faces with NDJSON streams of wildly
// varying size.
func TestMemoryByteBoundFlood(t *testing.T) {
	const maxBytes = 64 << 10
	m := NewMemorySized(0, maxBytes)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		payload := make([]byte, 1+rng.Intn(maxBytes/4))
		m.Put(fmt.Sprintf("k%d", i%64), payload) // mixes inserts and updates
		if st := m.Stats(); st.Bytes > maxBytes {
			t.Fatalf("put %d: live bytes %d exceed bound %d", i, st.Bytes, maxBytes)
		}
	}
	st := m.Stats()
	if st.PeakBytes > maxBytes {
		t.Fatalf("peak bytes %d exceed bound %d", st.PeakBytes, maxBytes)
	}
	if st.PeakBytes == 0 || st.Evictions == 0 {
		t.Fatalf("flood recorded no peak (%d) or evictions (%d)", st.PeakBytes, st.Evictions)
	}
	if m.MaxBytes() != maxBytes {
		t.Fatalf("MaxBytes() = %d, want %d", m.MaxBytes(), maxBytes)
	}
}

// TestMemoryByteBoundDeclinesOversized: one payload larger than the
// whole bound is declined outright, leaving the cache — including a
// previous value under the same key — untouched.
func TestMemoryByteBoundDeclinesOversized(t *testing.T) {
	m := NewMemorySized(0, 100)
	m.Put("a", make([]byte, 40))
	m.Put("a", make([]byte, 200)) // declined: previous value survives
	if v, ok := m.Get("a"); !ok || len(v.([]byte)) != 40 {
		t.Fatalf("oversized update clobbered the entry: ok=%v", ok)
	}
	m.Put("big", make([]byte, 101))
	if _, ok := m.Get("big"); ok {
		t.Fatal("oversized insert was cached")
	}
	if st := m.Stats(); st.Bytes != 40 {
		t.Fatalf("live bytes %d, want 40", st.Bytes)
	}
}

// TestMemoryByteBoundUpdateEvicts: growing an existing entry evicts LRU
// entries until the bound holds again.
func TestMemoryByteBoundUpdateEvicts(t *testing.T) {
	m := NewMemorySized(0, 100)
	m.Put("a", make([]byte, 40))
	m.Put("b", make([]byte, 40))
	m.Put("b", make([]byte, 90)) // grows b; must evict a
	if _, ok := m.Get("a"); ok {
		t.Fatal("a survived an update-path eviction")
	}
	if v, ok := m.Get("b"); !ok || len(v.([]byte)) != 90 {
		t.Fatal("grown entry b missing")
	}
	if st := m.Stats(); st.Bytes != 90 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 90 bytes and 1 eviction", st)
	}
}

// TestMemoryByteBoundKeepsNewest: the most recently used entry is never
// evicted, even when it alone sits at the bound.
func TestMemoryByteBoundKeepsNewest(t *testing.T) {
	m := NewMemorySized(0, 100)
	m.Put("a", make([]byte, 60))
	m.Put("b", make([]byte, 100)) // evicts a, keeps b exactly at bound
	if _, ok := m.Get("b"); !ok {
		t.Fatal("newest entry evicted")
	}
	if st := m.Stats(); st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats %+v, want 1 entry of 100 bytes", st)
	}
}
