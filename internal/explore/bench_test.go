package explore

import (
	"testing"

	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/sim"
)

// BenchmarkExplore prices a 3-input x 4-pattern state space per
// iteration and reports the exploration throughput in states/sec — the
// number CI's bench smoke watches.
func BenchmarkExplore(b *testing.B) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, L2: ptr(l2()), Mem: memctrl.DefaultConfig()}
	inputs := []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 1, 5}}}
	budget := Budget{InitStates: 4}
	states := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Explore(sys, inputs, budget)
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
}
