package explore

import (
	"fmt"
	"reflect"
	"testing"

	"paratime/internal/core"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/sim"
)

// FuzzExploreWitness mutates program shape, input domains and budgets,
// and checks the explorer's contract on every variant: enumeration is
// deterministic, the witness replays via sim.Run to exactly ExactWorst,
// and the exact worst never exceeds the static bound.
func FuzzExploreWitness(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(1), uint8(2), uint8(8))
	f.Add(uint8(5), uint8(4), uint8(0), uint8(3), uint8(16))
	f.Add(uint8(2), uint8(1), uint8(7), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, outerB, strideB, valB, patB, decB uint8) {
		outer := 1 + int(outerB%6)
		stride := 4 * (1 + int(strideB%6))
		v := int32(valB % 8)
		p := isa.MustAssemble("fuzz", fmt.Sprintf(`
        li   r2, %d
        li   r6, 0x8000
loop:   beq  r1, r0, even
        mul  r4, r2, r2
        j    join
even:   add  r4, r4, r2
join:   ld   r5, 0(r6)
        add  r4, r4, r5
        st   r4, 0(r6)
        addi r6, r6, %d
        addi r2, r2, -1
        bne  r2, r0, loop
        halt`, outer, stride))
		sys := sim.System{Cores: []sim.CoreConfig{simCore("f", p)}, L2: ptr(l2()), Mem: memctrl.DefaultConfig()}
		inputs := []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, v, v + 1}}}
		b := Budget{
			InitStates:         1 + int(patB%4),
			MaxBranchDecisions: 1 + int(decB%24),
		}
		res, err := Explore(sys, inputs, b)
		if err != nil {
			// Budgets can legitimately exclude every trace; that must be
			// an explicit error, never a silent empty result.
			return
		}
		again, err := Explore(sys, inputs, b)
		if err != nil {
			t.Fatalf("second run failed where first succeeded: %v", err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("enumeration not deterministic:\n%+v\n%+v", res, again)
		}
		rep, err := Replay(sys, res.Witness[0].Init, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles(0) != res.ExactWorst[0] {
			t.Fatalf("witness replays to %d, want exactly %d (witness %+v)",
				rep.Cycles(0), res.ExactWorst[0], res.Witness[0])
		}
		a, err := core.Analyze(core.Task{Name: "f", Prog: p}, staticSys(0, ptr(l2())))
		if err != nil {
			t.Fatal(err)
		}
		if res.ExactWorst[0] > a.WCET {
			t.Fatalf("UNSOUND: exact worst %d above static bound %d", res.ExactWorst[0], a.WCET)
		}
	})
}
