package explore

import (
	"fmt"

	"paratime/internal/parallel"
	"paratime/internal/sim"
)

// ExplorePar is Explore with the priced simulations fanned across
// workers. The result — including witnesses, truncation flags, and
// every error message — is identical to Explore at any worker count:
//
//   - a sequential scan first replays Explore's enumeration (patterns
//     outermost, combinations row-major, the same memoized taint traces
//     and MaxStates gating) to fix the exact priced-state list;
//   - the simulations, which are pure functions of their start state,
//     then run on the worker pool;
//   - a sequential reduce in enumeration order replays Explore's
//     accumulation, so ties keep resolving to the lowest state index
//     and a simulation failure reports the same state number — and
//     outranks a trace error from any later combination, exactly as
//     the interleaved sequential loop would order them.
func ExplorePar(sys sim.System, inputs []Input, b Budget, workers int) (*Result, error) {
	if workers <= 1 {
		return Explore(sys, inputs, b)
	}
	b = b.withDefaults()
	n := len(sys.Cores)
	if n == 0 {
		return nil, fmt.Errorf("explore: no cores")
	}
	perCore, counts, combos, err := planInputs(n, inputs, b.MaxStates)
	if err != nil {
		return nil, err
	}

	type traceKey struct {
		core int
		idx  int64
	}
	traces := map[traceKey]*trace{}
	getTrace := func(core int, idx int64) (*trace, error) {
		k := traceKey{core, idx}
		if tr, ok := traces[k]; ok {
			return tr, nil
		}
		tr, err := runTaint(sys.Cores[core].Prog, assignFor(perCore[core], idx), b)
		if err != nil {
			return nil, fmt.Errorf("explore: core %d (%s): %w", core, sys.Cores[core].Name, err)
		}
		traces[k] = tr
		return tr, nil
	}

	// Phase 1: sequential scan fixing the priced-state list. Pricing is
	// the only step Explore runs between enumeration decisions that
	// cannot change them (the loop guards depend only on the priced
	// count, which equals the job count here), so the list is exact.
	type job struct {
		pat     int
		assigns [][]RegValue
		trs     []*trace
		cycles  []int64
		err     error
	}
	res := &Result{ExactWorst: make([]int64, n), Witness: make([]Witness, n)}
	for i := range res.ExactWorst {
		res.ExactWorst[i] = -1
	}
	var jobs []*job
	var traceErr error
	var sawSteps, sawDecisions bool
	idxs := make([]int64, n)
scan:
	for pat := 0; pat < b.InitStates && len(jobs) < b.MaxStates; pat++ {
		for combo := int64(0); combo < combos && len(jobs) < b.MaxStates; combo++ {
			decompose(combo, counts, idxs)
			assigns := make([][]RegValue, n)
			trs := make([]*trace, n)
			ok := true
			for c := 0; c < n; c++ {
				assigns[c] = assignFor(perCore[c], idxs[c])
				tr, err := getTrace(c, idxs[c])
				if err != nil {
					// Explore would abort here — after pricing every state
					// already on the list. Price them first: a simulation
					// failure among them takes precedence.
					traceErr = err
					break scan
				}
				trs[c] = tr
				if tr.truncated {
					ok = false
					sawSteps = sawSteps || tr.reason == "MaxSteps"
					sawDecisions = sawDecisions || tr.reason == "MaxBranchDecisions"
				}
			}
			if !ok {
				res.Truncated = true
				continue
			}
			jobs = append(jobs, &job{pat: pat, assigns: assigns, trs: trs})
		}
	}

	// Phase 2: price every state on the worker pool. Each job builds its
	// own core slice, so concurrent sim.Run calls share only immutable
	// inputs (programs and the System template).
	parallel.For(workers, len(jobs), func(k int) {
		j := jobs[k]
		run := sys
		run.Cores = make([]sim.CoreConfig, n)
		copy(run.Cores, sys.Cores)
		for c := range run.Cores {
			run.Cores[c].InitRegs = initRegs(j.assigns[c])
			run.Cores[c].WarmI, run.Cores[c].WarmD = warmAddrs(run.Cores[c], j.pat)
		}
		simRes, err := sim.Run(run, b.MaxCycles)
		if err != nil {
			j.err = err
			return
		}
		j.cycles = make([]int64, n)
		for c := 0; c < n; c++ {
			j.cycles[c] = simRes.Cycles(c)
		}
	})

	// Phase 3: sequential reduce in enumeration order.
	paths := map[string]bool{}
	priced := 0
	for _, j := range jobs {
		if j.err != nil {
			return nil, fmt.Errorf("explore: state %d (pattern %d): %w", priced, j.pat, j.err)
		}
		priced++
		for c := 0; c < n; c++ {
			paths[fmt.Sprintf("%d|%s", c, j.trs[c].path)] = true
			if j.trs[c].decisions > res.MaxDecisions {
				res.MaxDecisions = j.trs[c].decisions
			}
			if cyc := j.cycles[c]; cyc > res.ExactWorst[c] {
				res.ExactWorst[c] = cyc
				res.Witness[c] = Witness{
					Init:   InitState{Regs: j.assigns, Pattern: j.pat},
					Path:   j.trs[c].path,
					Cycles: cyc,
				}
			}
		}
	}
	if traceErr != nil {
		return nil, traceErr
	}
	if priced == 0 {
		return nil, truncatedBudgetErr(sawSteps, sawDecisions)
	}
	res.States = priced
	res.Paths = len(paths)
	if total := saturatingMul(combos, int64(b.InitStates)); int64(priced) < total {
		res.Truncated = true
	}
	return res, nil
}
