package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/sim"
)

// requireSameExplore compares full exploration outcomes, including the
// error channel: parallel pricing must reproduce witnesses, counters,
// truncation flags and error text exactly.
func requireSameExplore(t *testing.T, label string, want *Result, wantErr error, got *Result, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: sequential %v, parallel %v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text:\nseq %q\npar %q", label, wantErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results differ:\nseq %+v\npar %+v", label, want, got)
	}
}

// TestExploreParMatchesSequential: ExplorePar must be bit-identical to
// Explore — same ExactWorst, witnesses, state/path counters, truncation
// — for random input-dependent programs, solo and co-running, at
// several worker counts under GOMAXPROCS 1 and 8.
func TestExploreParMatchesSequential(t *testing.T) {
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		rng := rand.New(rand.NewSource(318))
		for trial := 0; trial < 6; trial++ {
			for _, nCores := range []int{1, 2} {
				cores := make([]sim.CoreConfig, nCores)
				inputs := make([]Input, nCores)
				for i := range cores {
					cores[i] = simCore(fmt.Sprintf("p%d", i), randomProgram(rng, fmt.Sprintf("p%d", i)))
					inputs[i] = Input{Core: i, Reg: isa.R1, Values: []int32{0, 1, 3}}
				}
				sys := sim.System{Cores: cores, Mem: memctrl.DefaultConfig()}
				if trial%2 == 1 {
					sys.L2 = ptr(l2())
				}
				b := Budget{InitStates: 2}
				want, wantErr := Explore(sys, inputs, b)
				for _, workers := range []int{2, 8} {
					label := fmt.Sprintf("procs %d trial %d cores %d workers %d", procs, trial, nCores, workers)
					got, gotErr := ExplorePar(sys, inputs, b, workers)
					requireSameExplore(t, label, want, wantErr, got, gotErr)
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestExploreParTruncation: budget truncation semantics — the MaxStates
// cut-off point, the Truncated flag and the all-truncated error naming
// the limiting budget field — must survive parallel pricing unchanged.
func TestExploreParTruncation(t *testing.T) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, Mem: memctrl.DefaultConfig()}
	inputs := []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 1, 5}}}
	budgets := map[string]Budget{
		// 3 assignments x 3 patterns = 9 states; cap mid-enumeration.
		"max-states": {InitStates: 3, MaxStates: 4},
		// Every trace blows the decision budget: no state priced, and
		// the error must name MaxBranchDecisions.
		"all-truncated": {InitStates: 2, MaxBranchDecisions: 1},
		// Divergence guard trips first: the error names MaxSteps.
		"all-truncated-steps": {InitStates: 2, MaxSteps: 3},
	}
	for name, b := range budgets {
		want, wantErr := Explore(sys, inputs, b)
		if name == "max-states" {
			if wantErr != nil {
				t.Fatalf("%s: %v", name, wantErr)
			}
			if want.States != 4 || !want.Truncated {
				t.Fatalf("%s: states %d truncated %v, want 4 and true", name, want.States, want.Truncated)
			}
		} else {
			if wantErr == nil {
				t.Fatalf("%s: sequential exploration unexpectedly succeeded", name)
			}
			field := "MaxBranchDecisions"
			if name == "all-truncated-steps" {
				field = "MaxSteps"
			}
			if !strings.Contains(wantErr.Error(), field) {
				t.Fatalf("%s: error %q does not name %s", name, wantErr, field)
			}
		}
		for _, workers := range []int{2, 8} {
			got, gotErr := ExplorePar(sys, inputs, b, workers)
			requireSameExplore(t, fmt.Sprintf("%s workers %d", name, workers), want, wantErr, got, gotErr)
		}
	}
}
