package explore

import (
	"fmt"
	"testing"

	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/sim"
)

func benchParSystem() (sim.System, []Input, Budget) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, L2: ptr(l2()), Mem: memctrl.DefaultConfig()}
	inputs := []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 1, 2, 5, 9, 13}}}
	return sys, inputs, Budget{InitStates: 4} // 6 assignments x 4 patterns
}

// BenchmarkExplorePar prices the enumerated state space on a worker
// pool — the coarsest-grained parallel path, one full simulation per
// work item — against its sequential twin below.
func BenchmarkExplorePar(b *testing.B) {
	sys, inputs, budget := benchParSystem()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			states := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ExplorePar(sys, inputs, budget, workers)
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
		})
	}
}

// BenchmarkExploreParSeq is the sequential twin of BenchmarkExplorePar:
// the plain Explore entry point on the identical state space.
func BenchmarkExploreParSeq(b *testing.B) {
	sys, inputs, budget := benchParSystem()
	states := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Explore(sys, inputs, budget)
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
}
