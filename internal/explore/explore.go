// Package explore is the toolkit's bounded exhaustive-exploration
// oracle (KTA-style, after Broman's KTA tool): for small programs it
// enumerates every input assignment from a declared finite domain and
// every budgeted initial cache state, drives each resulting concrete
// machine state through the cycle-accurate simulator — the same
// compiled ops and latency tables the static analysis prices — and
// returns the exact worst case observed, with a replayable witness.
//
// Where the simulator turns "sound" into "sound against one trace",
// the explorer turns it into "sound against *all* bounded traces", and
// the ratio exact_worst / static_bound becomes a measured tightness
// that regression gates can pin (TIGHTNESS.json at the repo root).
//
// Exploration is exhaustive over the declared state space, never
// silently partial: every budget (path decisions, initial states,
// total states, architectural steps) is explicit, enumeration order is
// deterministic, and any state skipped or cut off sets Truncated on
// the result.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"paratime/internal/isa"
	"paratime/internal/sim"
)

// Default budgets (applied by Explore when the corresponding Budget
// field is zero).
const (
	DefaultMaxBranchDecisions = 16
	DefaultInitStates         = 1
	DefaultMaxStates          = 4096
	DefaultMaxSteps           = 1_000_000
	DefaultMaxCycles          = 500_000_000
)

// Budget bounds one exploration. The zero value selects the defaults.
type Budget struct {
	// MaxBranchDecisions caps the input-dependent (tainted) branch
	// decisions a single trace may take; a trace exceeding it is
	// skipped and the exploration reports Truncated.
	MaxBranchDecisions int
	// InitStates is the number of enumerated initial cache states:
	// pattern 0 is the cold state, patterns >= 1 deterministically
	// pre-warm the caches with rotations of the program's footprint.
	InitStates int
	// MaxStates is the hard cap on priced (assignment, pattern) states;
	// hitting it stops enumeration and sets Truncated.
	MaxStates int
	// MaxSteps caps architectural steps per trace (divergence guard).
	MaxSteps int64
	// MaxCycles bounds each priced simulation.
	MaxCycles int64
}

func (b Budget) withDefaults() Budget {
	if b.MaxBranchDecisions == 0 {
		b.MaxBranchDecisions = DefaultMaxBranchDecisions
	}
	if b.InitStates == 0 {
		b.InitStates = DefaultInitStates
	}
	if b.MaxStates == 0 {
		b.MaxStates = DefaultMaxStates
	}
	if b.MaxSteps == 0 {
		b.MaxSteps = DefaultMaxSteps
	}
	if b.MaxCycles == 0 {
		b.MaxCycles = DefaultMaxCycles
	}
	return b
}

// Input declares one input register of one core together with its
// finite value domain. The explorer enumerates the cartesian product
// of all declared inputs.
type Input struct {
	Core   int
	Reg    isa.Reg
	Values []int32
}

// RegValue is one register assignment of a witness.
type RegValue struct {
	Reg   isa.Reg
	Value int32
}

// InitState identifies one enumerated machine start state: per-core
// input register assignments plus the initial-cache pattern index.
type InitState struct {
	// Regs holds core i's input assignment at index i (sorted by
	// register, ascending).
	Regs [][]RegValue
	// Pattern is the initial cache state index (0 = cold).
	Pattern int
}

// Witness is the start state and path that realize one core's exact
// worst case; Replay reproduces Cycles exactly.
type Witness struct {
	Init InitState
	// Path records the witnessed core's input-dependent branch
	// decisions in trace order ('T' taken, 'N' not taken).
	Path   string
	Cycles int64
}

// Result is the outcome of one exploration.
type Result struct {
	// ExactWorst is core i's maximum completion time over every priced
	// state.
	ExactWorst []int64
	// Witness realizes ExactWorst per core.
	Witness []Witness
	// States counts priced (assignment, pattern) states.
	States int
	// Paths counts distinct (core, decision-sequence) pairs observed.
	Paths int
	// MaxDecisions is the largest per-trace count of input-dependent
	// branch decisions among priced traces.
	MaxDecisions int
	// Truncated reports that the enumeration was NOT exhaustive: a
	// budget cut states off or skipped traces. A truncated ExactWorst
	// is only a lower bound on the true exact worst case.
	Truncated bool
}

// trace is the architectural summary of one (core, assignment) run.
type trace struct {
	path      string
	decisions int
	truncated bool
	// reason names the Budget field that cut the trace off ("MaxSteps"
	// or "MaxBranchDecisions"); empty for complete traces.
	reason string
}

// truncatedBudgetErr is the all-truncated failure, naming the Budget
// field(s) that actually tripped so callers know which limit to raise.
func truncatedBudgetErr(sawSteps, sawDecisions bool) error {
	var limit string
	switch {
	case sawSteps && sawDecisions:
		limit = "MaxSteps or MaxBranchDecisions"
	case sawSteps:
		limit = "MaxSteps"
	default:
		limit = "MaxBranchDecisions"
	}
	return fmt.Errorf("explore: no state could be priced within the budgets (every trace exceeded %s)", limit)
}

// Explore enumerates every input assignment and initial cache pattern
// within the budget, prices each state with sim.Run, and returns the
// per-core exact worst case with witnesses. Enumeration order is
// deterministic: patterns outermost (cold first), then assignments in
// row-major declared-value order with the last input varying fastest.
func Explore(sys sim.System, inputs []Input, b Budget) (*Result, error) {
	b = b.withDefaults()
	n := len(sys.Cores)
	if n == 0 {
		return nil, fmt.Errorf("explore: no cores")
	}
	perCore, counts, combos, err := planInputs(n, inputs, b.MaxStates)
	if err != nil {
		return nil, err
	}

	// Taint traces are architectural, hence per (core, assignment) —
	// independent of co-runners and cache patterns; memoize them.
	type traceKey struct {
		core int
		idx  int64
	}
	traces := map[traceKey]*trace{}
	getTrace := func(core int, idx int64) (*trace, error) {
		k := traceKey{core, idx}
		if tr, ok := traces[k]; ok {
			return tr, nil
		}
		tr, err := runTaint(sys.Cores[core].Prog, assignFor(perCore[core], idx), b)
		if err != nil {
			return nil, fmt.Errorf("explore: core %d (%s): %w", core, sys.Cores[core].Name, err)
		}
		traces[k] = tr
		return tr, nil
	}

	res := &Result{ExactWorst: make([]int64, n), Witness: make([]Witness, n)}
	for i := range res.ExactWorst {
		res.ExactWorst[i] = -1
	}
	paths := map[string]bool{}
	priced := 0
	var sawSteps, sawDecisions bool
	idxs := make([]int64, n)
	for pat := 0; pat < b.InitStates && priced < b.MaxStates; pat++ {
		for combo := int64(0); combo < combos && priced < b.MaxStates; combo++ {
			decompose(combo, counts, idxs)
			assigns := make([][]RegValue, n)
			trs := make([]*trace, n)
			ok := true
			for c := 0; c < n; c++ {
				assigns[c] = assignFor(perCore[c], idxs[c])
				tr, err := getTrace(c, idxs[c])
				if err != nil {
					return nil, err
				}
				trs[c] = tr
				if tr.truncated {
					ok = false
					sawSteps = sawSteps || tr.reason == "MaxSteps"
					sawDecisions = sawDecisions || tr.reason == "MaxBranchDecisions"
				}
			}
			if !ok {
				res.Truncated = true
				continue
			}
			run := sys
			run.Cores = make([]sim.CoreConfig, n)
			copy(run.Cores, sys.Cores)
			for c := range run.Cores {
				run.Cores[c].InitRegs = initRegs(assigns[c])
				run.Cores[c].WarmI, run.Cores[c].WarmD = warmAddrs(run.Cores[c], pat)
			}
			simRes, err := sim.Run(run, b.MaxCycles)
			if err != nil {
				return nil, fmt.Errorf("explore: state %d (pattern %d): %w", priced, pat, err)
			}
			priced++
			for c := 0; c < n; c++ {
				paths[fmt.Sprintf("%d|%s", c, trs[c].path)] = true
				if trs[c].decisions > res.MaxDecisions {
					res.MaxDecisions = trs[c].decisions
				}
				if cyc := simRes.Cycles(c); cyc > res.ExactWorst[c] {
					res.ExactWorst[c] = cyc
					res.Witness[c] = Witness{
						Init:   InitState{Regs: assigns, Pattern: pat},
						Path:   trs[c].path,
						Cycles: cyc,
					}
				}
			}
		}
	}
	if priced == 0 {
		return nil, truncatedBudgetErr(sawSteps, sawDecisions)
	}
	res.States = priced
	res.Paths = len(paths)
	if total := saturatingMul(combos, int64(b.InitStates)); int64(priced) < total {
		res.Truncated = true
	}
	return res, nil
}

// Replay reruns one witnessed start state and returns the simulation
// result; the witnessed core's cycles equal Witness.Cycles exactly.
func Replay(sys sim.System, init InitState, maxCycles int64) (*sim.Result, error) {
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	run := sys
	run.Cores = make([]sim.CoreConfig, len(sys.Cores))
	copy(run.Cores, sys.Cores)
	for c := range run.Cores {
		if c < len(init.Regs) {
			run.Cores[c].InitRegs = initRegs(init.Regs[c])
		}
		run.Cores[c].WarmI, run.Cores[c].WarmD = warmAddrs(run.Cores[c], init.Pattern)
	}
	return sim.Run(run, maxCycles)
}

// planInputs validates and groups the declared inputs: per-core sorted
// input lists, per-core assignment counts, and the (saturating) global
// combination count.
func planInputs(n int, inputs []Input, maxStates int) (perCore [][]Input, counts []int64, combos int64, err error) {
	perCore = make([][]Input, n)
	seen := map[[2]int]bool{}
	for _, in := range inputs {
		if in.Core < 0 || in.Core >= n {
			return nil, nil, 0, fmt.Errorf("explore: input core %d outside [0,%d)", in.Core, n)
		}
		if in.Reg == 0 || in.Reg >= isa.NumRegs {
			return nil, nil, 0, fmt.Errorf("explore: input register %v is not assignable", in.Reg)
		}
		if len(in.Values) == 0 {
			return nil, nil, 0, fmt.Errorf("explore: input %v of core %d has no values", in.Reg, in.Core)
		}
		key := [2]int{in.Core, int(in.Reg)}
		if seen[key] {
			return nil, nil, 0, fmt.Errorf("explore: duplicate input %v on core %d", in.Reg, in.Core)
		}
		seen[key] = true
		perCore[in.Core] = append(perCore[in.Core], in)
	}
	counts = make([]int64, n)
	combos = 1
	for c := range perCore {
		sort.Slice(perCore[c], func(i, j int) bool { return perCore[c][i].Reg < perCore[c][j].Reg })
		counts[c] = 1
		for _, in := range perCore[c] {
			counts[c] = saturatingMul(counts[c], int64(len(in.Values)))
		}
		combos = saturatingMul(combos, counts[c])
	}
	_ = maxStates // the cap is enforced during enumeration
	return perCore, counts, combos, nil
}

// decompose maps one global combination index onto per-core assignment
// indices (last core varies fastest).
func decompose(combo int64, counts []int64, idxs []int64) {
	for c := len(counts) - 1; c >= 0; c-- {
		idxs[c] = combo % counts[c]
		combo /= counts[c]
	}
}

// assignFor materializes one core's assignment from its index (last
// input varies fastest).
func assignFor(inputs []Input, idx int64) []RegValue {
	if len(inputs) == 0 {
		return nil
	}
	out := make([]RegValue, len(inputs))
	for i := len(inputs) - 1; i >= 0; i-- {
		k := idx % int64(len(inputs[i].Values))
		idx /= int64(len(inputs[i].Values))
		out[i] = RegValue{Reg: inputs[i].Reg, Value: inputs[i].Values[k]}
	}
	return out
}

// initRegs renders an assignment as a sim.CoreConfig.InitRegs vector.
func initRegs(assign []RegValue) []int32 {
	if len(assign) == 0 {
		return nil
	}
	out := make([]int32, isa.NumRegs)
	for _, rv := range assign {
		if rv.Reg > 0 && rv.Reg < isa.NumRegs {
			out[rv.Reg] = rv.Value
		}
	}
	return out
}

// warmAddrs derives initial cache pattern `pattern` for one core:
// pattern 0 is cold; pattern j >= 1 touches a deterministic rotation
// of the program's footprint lines (instruction side and data side
// independently), so successive patterns vary both which lines start
// resident and their LRU ages.
func warmAddrs(cc sim.CoreConfig, pattern int) (wi, wd []uint32) {
	if pattern == 0 {
		return nil, nil
	}
	return rotation(textLines(cc.Prog, cc.L1I.LineBytes), pattern),
		rotation(dataLines(cc.Prog, cc.L1D.LineBytes), pattern)
}

// textLines lists the line-aligned instruction addresses of the text
// segment in ascending order.
func textLines(p *isa.Program, lineBytes int) []uint32 {
	if lineBytes <= 0 {
		return nil
	}
	lb := uint32(lineBytes)
	start := p.Base &^ (lb - 1)
	end := p.Base + uint32(len(p.Insts)*isa.InstBytes)
	var out []uint32
	for a := start; a < end; a += lb {
		out = append(out, a)
	}
	return out
}

// dataLines lists the line-aligned data-image addresses in ascending
// order.
func dataLines(p *isa.Program, lineBytes int) []uint32 {
	if lineBytes <= 0 || len(p.Data) == 0 {
		return nil
	}
	lb := uint32(lineBytes)
	set := map[uint32]bool{}
	//paralint:unordered set build; each address marks one line key
	for a := range p.Data {
		set[a&^(lb-1)] = true
	}
	out := make([]uint32, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rotation selects pattern j's deterministic slice of the footprint:
// start offset (j-1)*7 mod len, count 1 + (j-1) mod len.
func rotation(lines []uint32, pattern int) []uint32 {
	if len(lines) == 0 {
		return nil
	}
	start := ((pattern - 1) * 7) % len(lines)
	count := 1 + (pattern-1)%len(lines)
	out := make([]uint32, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, lines[(start+i)%len(lines)])
	}
	return out
}

func saturatingMul(a, b int64) int64 {
	const cap = int64(1) << 40
	if a > 0 && b > cap/a {
		return cap
	}
	return a * b
}

// runTaint executes one core's program architecturally under the given
// input assignment, tracking which registers and memory words carry
// input-derived (tainted) values, and records the outcome of every
// tainted conditional branch — the trace's input-dependent path
// choices. Execution is fully concrete; taint is bookkeeping only.
func runTaint(prog *isa.Program, assign []RegValue, b Budget) (*trace, error) {
	st := isa.NewState(prog)
	var taintReg [isa.NumRegs]bool
	for _, rv := range assign {
		if rv.Reg > 0 && rv.Reg < isa.NumRegs {
			st.Reg[rv.Reg] = rv.Value
			taintReg[rv.Reg] = true
		}
	}
	taintMem := map[uint32]bool{}
	setTaint := func(r isa.Reg, v bool) {
		if r != isa.R0 {
			taintReg[r] = v
		}
	}
	var path strings.Builder
	decisions := 0
	for steps := int64(0); !st.Halted; steps++ {
		if steps >= b.MaxSteps {
			return &trace{truncated: true, reason: "MaxSteps"}, nil
		}
		idx := st.Prog.Index(st.PC)
		if idx < 0 {
			return nil, fmt.Errorf("PC 0x%x outside text", st.PC)
		}
		in := st.Prog.Insts[idx]
		// Effective addresses must be read before the step mutates state.
		var addr uint32
		if in.IsMem() {
			addr = uint32(st.Reg[in.Rs1] + in.Imm)
		}
		if err := st.Step(); err != nil {
			return nil, err
		}
		switch in.Op {
		case isa.LI:
			setTaint(in.Rd, false)
		case isa.MOV:
			setTaint(in.Rd, taintReg[in.Rs1])
		case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
			isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT:
			setTaint(in.Rd, taintReg[in.Rs1] || taintReg[in.Rs2])
		case isa.ADDI, isa.ANDI, isa.ORI, isa.SLLI, isa.SRLI, isa.SLTI:
			setTaint(in.Rd, taintReg[in.Rs1])
		case isa.LD:
			setTaint(in.Rd, taintReg[in.Rs1] || taintMem[addr])
		case isa.ST:
			taintMem[addr] = taintReg[in.Rs1] || taintReg[in.Rs2]
		case isa.CALL:
			setTaint(isa.RA, false)
		case isa.RET:
			if taintReg[isa.RA] {
				// An input-derived return target is an input-dependent
				// control choice the explorer cannot enumerate finitely.
				decisions++
				if decisions > b.MaxBranchDecisions {
					return &trace{truncated: true, reason: "MaxBranchDecisions"}, nil
				}
				path.WriteByte('R')
			}
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
			if taintReg[in.Rs1] || taintReg[in.Rs2] {
				decisions++
				if decisions > b.MaxBranchDecisions {
					return &trace{truncated: true, reason: "MaxBranchDecisions"}, nil
				}
				if st.PC == in.Target {
					path.WriteByte('T')
				} else {
					path.WriteByte('N')
				}
			}
		}
	}
	return &trace{path: path.String(), decisions: decisions}, nil
}
