package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
	"paratime/internal/sim"
)

func l1i() cache.Config {
	return cache.Config{Name: "L1I", Sets: 8, Ways: 2, LineBytes: 16, HitLatency: 1}
}
func l1d() cache.Config {
	return cache.Config{Name: "L1D", Sets: 8, Ways: 2, LineBytes: 16, HitLatency: 1}
}
func l2() cache.Config {
	return cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
}

func simCore(name string, p *isa.Program) sim.CoreConfig {
	return sim.CoreConfig{Name: name, Prog: p, Pipe: pipeline.DefaultConfig(), L1I: l1i(), L1D: l1d()}
}

// staticSys mirrors a sim core configuration for the static analyzer.
func staticSys(busDelay int, l2cfg *cache.Config) core.SystemConfig {
	return core.SystemConfig{
		Pipeline: pipeline.DefaultConfig(),
		Mem: core.MemSystem{
			L1I:        l1i(),
			L1D:        l1d(),
			L2:         l2cfg,
			BusDelay:   busDelay,
			MemLatency: memctrl.DefaultConfig().Bound(),
		},
	}
}

// diamond is a program whose path — and therefore time — depends on the
// input register r1: nonzero r1 selects a multiply-heavy loop body.
const diamond = `
        li   r2, 6
        li   r6, 0x8000
loop:   beq  r1, r0, even
        mul  r4, r2, r2
        mul  r4, r4, r2
        j    join
even:   add  r4, r4, r2
join:   ld   r5, 0(r6)
        add  r4, r4, r5
        st   r4, 0(r6)
        addi r6, r6, 16
        addi r2, r2, -1
        bne  r2, r0, loop
        halt`

func TestExploreFindsWorstInput(t *testing.T) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, Mem: memctrl.DefaultConfig()}
	base, err := sim.Run(sys, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sys, []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 1}}}, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("two-state exploration must not truncate")
	}
	if res.States != 2 || res.Paths != 2 {
		t.Errorf("states %d paths %d, want 2 and 2", res.States, res.Paths)
	}
	// The default run seeds r1=0 (fast path), so the exact worst over
	// {0,1} must strictly exceed it.
	if res.ExactWorst[0] <= base.Cycles(0) {
		t.Errorf("exact worst %d not above default-input run %d", res.ExactWorst[0], base.Cycles(0))
	}
	w := res.Witness[0]
	if w.Cycles != res.ExactWorst[0] {
		t.Errorf("witness cycles %d != exact worst %d", w.Cycles, res.ExactWorst[0])
	}
	// r1=1 keeps the tainted loop branch not-taken on all 6 iterations.
	if w.Path != strings.Repeat("N", 6) {
		t.Errorf("witness path %q, want %q", w.Path, strings.Repeat("N", 6))
	}
	if got := w.Init.Regs[0]; len(got) != 1 || got[0] != (RegValue{Reg: isa.R1, Value: 1}) {
		t.Errorf("witness assignment %v, want r1=1", got)
	}
	rep, err := Replay(sys, w.Init, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles(0) != res.ExactWorst[0] {
		t.Errorf("replay %d cycles, want exactly %d", rep.Cycles(0), res.ExactWorst[0])
	}
}

func TestExploreDeterministic(t *testing.T) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, Mem: memctrl.DefaultConfig()}
	inputs := []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 1, 5}}}
	b := Budget{InitStates: 3}
	r1, err := Explore(sys, inputs, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Explore(sys, inputs, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("exploration not deterministic:\n%+v\n%+v", r1, r2)
	}
	if r1.States != 9 {
		t.Errorf("states %d, want 3 assignments x 3 patterns = 9", r1.States)
	}
}

func TestExploreInitStatesEnumerated(t *testing.T) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, L2: ptr(l2()), Mem: memctrl.DefaultConfig()}
	res, err := Explore(sys, nil, Budget{InitStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 4 || res.Truncated {
		t.Errorf("states %d truncated %v, want 4 and false", res.States, res.Truncated)
	}
	// Pattern 0 is cold; warming an in-order core can only help, so the
	// cold state must be the witnessed worst.
	if res.Witness[0].Init.Pattern != 0 {
		t.Errorf("worst pattern %d, want 0 (cold)", res.Witness[0].Init.Pattern)
	}
	rep, err := Replay(sys, res.Witness[0].Init, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles(0) != res.ExactWorst[0] {
		t.Errorf("replay %d, want %d", rep.Cycles(0), res.ExactWorst[0])
	}
}

func TestExploreTruncation(t *testing.T) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, Mem: memctrl.DefaultConfig()}

	// MaxStates cuts enumeration off.
	res, err := Explore(sys, []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 1, 2, 3}}},
		Budget{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.States != 2 {
		t.Errorf("MaxStates=2 over 4 assignments: states %d truncated %v", res.States, res.Truncated)
	}

	// A trace over the decision budget is skipped, flagged, and the rest
	// still explored: r1 counts a tainted loop, so r1=8 takes 9 tainted
	// decisions.
	loop := isa.MustAssemble("inputloop", `
loop:   beq  r1, r0, done
        addi r1, r1, -1
        j    loop
done:   halt`)
	lsys := sim.System{Cores: []sim.CoreConfig{simCore("l", loop)}, Mem: memctrl.DefaultConfig()}
	res, err = Explore(lsys, []Input{{Core: 0, Reg: isa.R1, Values: []int32{0, 8}}},
		Budget{MaxBranchDecisions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.States != 1 {
		t.Errorf("decision budget: states %d truncated %v, want 1 and true", res.States, res.Truncated)
	}

	// Every trace over budget: no state priced, explicit error.
	if _, err = Explore(lsys, []Input{{Core: 0, Reg: isa.R1, Values: []int32{8, 9}}},
		Budget{MaxBranchDecisions: 2}); err == nil {
		t.Error("all-truncated exploration must fail, not report an empty exact worst")
	}
}

func TestExploreRejectsBadInputs(t *testing.T) {
	p := isa.MustAssemble("diamond", diamond)
	sys := sim.System{Cores: []sim.CoreConfig{simCore("d", p)}, Mem: memctrl.DefaultConfig()}
	for name, bad := range map[string][]Input{
		"core out of range": {{Core: 1, Reg: isa.R1, Values: []int32{0}}},
		"zero register":     {{Core: 0, Reg: isa.R0, Values: []int32{0}}},
		"no values":         {{Core: 0, Reg: isa.R1}},
		"duplicate":         {{Core: 0, Reg: isa.R1, Values: []int32{0}}, {Core: 0, Reg: isa.R1, Values: []int32{1}}},
	} {
		if _, err := Explore(sys, bad, Budget{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// regime wires one co-run topology: the sandwich test runs every one.
type regime struct {
	build func(progs []*isa.Program) sim.System
	// bound returns the static busDelay and L2 view for core i.
	bound func(sys sim.System, i int) (int, *cache.Config)
}

func regimes() map[string]regime {
	memLat := func() int { return memctrl.DefaultConfig().Bound() }
	return map[string]regime{
		"solo": {
			build: func(progs []*isa.Program) sim.System {
				return sim.System{Cores: []sim.CoreConfig{simCore("t0", progs[0])},
					L2: ptr(l2()), Mem: memctrl.DefaultConfig()}
			},
			bound: func(sys sim.System, i int) (int, *cache.Config) { return 0, ptr(l2()) },
		},
		"joint": {
			build: func(progs []*isa.Program) sim.System {
				cores := make([]sim.CoreConfig, len(progs))
				for i, p := range progs {
					cores[i] = simCore(fmt.Sprintf("t%d", i), p)
				}
				return sim.System{Cores: cores, L2: ptr(l2()), SharedL2: true,
					Bus: arbiter.NewRoundRobin(len(progs), l2().HitLatency+memLat()),
					Mem: memctrl.DefaultConfig()}
			},
			// Joint static bound: misses everywhere (shared L2 gives no
			// guarantee), worst-case bus wait.
			bound: func(sys sim.System, i int) (int, *cache.Config) {
				return sys.Bus.Bound(i), nil
			},
		},
		"partition": {
			build: func(progs []*isa.Program) sim.System {
				view := cache.Config{Name: "L2v", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
				cores := make([]sim.CoreConfig, len(progs))
				for i, p := range progs {
					cores[i] = simCore(fmt.Sprintf("t%d", i), p)
					v := view
					cores[i].L2 = &v
				}
				return sim.System{Cores: cores, L2: ptr(l2()),
					Bus: arbiter.NewRoundRobin(len(progs), l2().HitLatency+memLat()),
					Mem: memctrl.DefaultConfig()}
			},
			bound: func(sys sim.System, i int) (int, *cache.Config) {
				return sys.Bus.Bound(i), sys.Cores[i].L2
			},
		},
		"bus": {
			build: func(progs []*isa.Program) sim.System {
				cores := make([]sim.CoreConfig, len(progs))
				for i, p := range progs {
					cores[i] = simCore(fmt.Sprintf("t%d", i), p)
				}
				return sim.System{Cores: cores, L2: ptr(l2()),
					Bus: arbiter.NewRoundRobin(len(progs), l2().HitLatency+memLat()),
					Mem: memctrl.DefaultConfig()}
			},
			bound: func(sys sim.System, i int) (int, *cache.Config) {
				return sys.Bus.Bound(i), ptr(l2())
			},
		},
	}
}

// randomProgram builds a small program whose path depends on r1 and
// whose loop trip count and data stride are drawn from the rng.
func randomProgram(rng *rand.Rand, name string) *isa.Program {
	outer := 2 + rng.Intn(5)
	stride := 4 * (1 + rng.Intn(6))
	return isa.MustAssemble(name, fmt.Sprintf(`
        li   r2, %d
        li   r6, 0x8000
loop:   beq  r1, r0, even
        mul  r4, r2, r2
        j    join
even:   add  r4, r4, r2
join:   ld   r5, 0(r6)
        add  r4, r4, r5
        st   r4, 0(r6)
        addi r6, r6, %d
        addi r2, r2, -1
        bne  r2, r0, loop
        halt`, outer, stride))
}

// TestSandwichAllRegimes is the central tightness property: under every
// regime, for random input-dependent programs,
//
//	sim.Run (one trace)  <=  explore.ExactWorst  <=  static WCET
//
// and the witness replays to exactly ExactWorst.
func TestSandwichAllRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for regimeName, reg := range regimes() {
		nCores := 1
		if regimeName != "solo" {
			nCores = 2
		}
		for trial := 0; trial < 6; trial++ {
			progs := make([]*isa.Program, nCores)
			for i := range progs {
				progs[i] = randomProgram(rng, fmt.Sprintf("p%d", i))
			}
			sys := reg.build(progs)
			var inputs []Input
			for i := range progs {
				inputs = append(inputs, Input{Core: i, Reg: isa.R1, Values: []int32{0, 1, 3}})
			}
			res, err := Explore(sys, inputs, Budget{InitStates: 2})
			if err != nil {
				t.Fatalf("%s/%d: %v", regimeName, trial, err)
			}
			if res.Truncated {
				t.Fatalf("%s/%d: unexpectedly truncated", regimeName, trial)
			}
			single, err := sim.Run(sys, DefaultMaxCycles)
			if err != nil {
				t.Fatalf("%s/%d: %v", regimeName, trial, err)
			}
			for c := range progs {
				// Lower slice: the default all-zero input with a cold cache
				// is one of the enumerated states.
				if res.ExactWorst[c] < single.Cycles(c) {
					t.Errorf("%s/%d core %d: exact worst %d below single trace %d",
						regimeName, trial, c, res.ExactWorst[c], single.Cycles(c))
				}
				// Upper slice: the static bound covers every enumerated state.
				busDelay, l2view := reg.bound(sys, c)
				a, err := core.Analyze(core.Task{Name: sys.Cores[c].Name, Prog: progs[c]},
					staticSys(busDelay, l2view))
				if err != nil {
					t.Fatalf("%s/%d: %v", regimeName, trial, err)
				}
				if res.ExactWorst[c] > a.WCET {
					t.Errorf("%s/%d core %d: UNSOUND exact worst %d above static bound %d",
						regimeName, trial, c, res.ExactWorst[c], a.WCET)
				}
				// Witness: replays to exactly the exact worst.
				rep, err := Replay(sys, res.Witness[c].Init, 0)
				if err != nil {
					t.Fatalf("%s/%d: %v", regimeName, trial, err)
				}
				if rep.Cycles(c) != res.ExactWorst[c] {
					t.Errorf("%s/%d core %d: witness replays to %d, want exactly %d",
						regimeName, trial, c, rep.Cycles(c), res.ExactWorst[c])
				}
			}
		}
	}
}

func ptr[T any](v T) *T { return &v }
