package paratime_test

import (
	"fmt"

	"paratime"
)

// The demo program: a ten-iteration countdown loop whose bound the flow
// analysis derives automatically.
const demoSrc = `
        li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`

// ExampleAnalyze runs the complete static WCET analysis of one task on
// the default system (private L1s, unified L2, analyzable memory
// controller bound).
func ExampleAnalyze() {
	prog := paratime.MustAssemble("demo", demoSrc)
	a, err := paratime.Analyze(paratime.Task{Name: "demo", Prog: prog}, paratime.DefaultSystem())
	if err != nil {
		panic(err)
	}
	fmt.Println("WCET", a.WCET)
	// Output: WCET 90
}

// ExampleSimulate validates a static bound against the deterministic
// cycle-accurate simulator: the observed cycle count never exceeds the
// analyzed WCET.
func ExampleSimulate() {
	sys := paratime.DefaultSystem()
	task := paratime.Task{Name: "demo", Prog: paratime.MustAssemble("demo", demoSrc)}
	a, err := paratime.Analyze(task, sys)
	if err != nil {
		panic(err)
	}
	res, err := paratime.Simulate(
		paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false, task), 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("sound:", a.WCET >= res.Cycles(0))
	// Output: sound: true
}

// ExampleAnalyzeAll batches the whole benchmark suite through the
// concurrent analysis engine; results come back in task order and are
// bit-identical to analyzing each task alone.
func ExampleAnalyzeAll() {
	tasks := paratime.Suite()
	as, err := paratime.AnalyzeAll(tasks, paratime.DefaultSystem())
	if err != nil {
		panic(err)
	}
	solo, err := paratime.Analyze(tasks[0], paratime.DefaultSystem())
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks analyzed:", len(as))
	fmt.Println("matches solo analysis:", as[0].WCET == solo.WCET)
	// Output:
	// tasks analyzed: 7
	// matches solo analysis: true
}

// ExampleAnalyzeJoint computes conflict-aware WCETs for tasks sharing
// the L2 (Li et al.'s age-shift model): co-runner conflicts can only
// inflate a task's bound.
func ExampleAnalyzeJoint() {
	res, err := paratime.AnalyzeJoint(paratime.Suite()[:2], paratime.DefaultSystem(), paratime.AgeShift)
	if err != nil {
		panic(err)
	}
	for i, name := range res.Names {
		fmt.Printf("%s: joint >= solo: %v\n", name, res.JointWCET[i] >= res.SoloWCET[i])
	}
	// Output:
	// fib24: joint >= solo: true
	// matmult4: joint >= solo: true
}
