package paratime_test

import (
	"context"
	"fmt"

	"paratime"
)

// The demo program: a ten-iteration countdown loop whose bound the flow
// analysis derives automatically.
const demoSrc = `
        li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`

// ExampleAnalyze runs the complete static WCET analysis of one task on
// the default system (private L1s, unified L2, analyzable memory
// controller bound).
func ExampleAnalyze() {
	prog := paratime.MustAssemble("demo", demoSrc)
	a, err := paratime.Analyze(paratime.Task{Name: "demo", Prog: prog}, paratime.DefaultSystem())
	if err != nil {
		panic(err)
	}
	fmt.Println("WCET", a.WCET)
	// Output: WCET 90
}

// ExampleSimulate validates a static bound against the deterministic
// cycle-accurate simulator: the observed cycle count never exceeds the
// analyzed WCET.
func ExampleSimulate() {
	sys := paratime.DefaultSystem()
	task := paratime.Task{Name: "demo", Prog: paratime.MustAssemble("demo", demoSrc)}
	a, err := paratime.Analyze(task, sys)
	if err != nil {
		panic(err)
	}
	res, err := paratime.Simulate(
		paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false, task), 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("sound:", a.WCET >= res.Cycles(0))
	// Output: sound: true
}

// ExampleRun executes a declarative analysis scenario: the whole
// request — tasks, system, sharing regime — is one serializable value,
// and the batch engine fans the work out under a context.
func ExampleRun() {
	sc := &paratime.Scenario{
		Spec: paratime.SpecVersion,
		Name: "quickstart",
		Tasks: []paratime.ScenarioTask{
			{Name: "demo", Source: demoSrc},
		},
		System: paratime.DefaultScenarioSystem(),
		Mode:   paratime.ScenarioMode{Kind: paratime.ModeSolo},
	}
	rep, err := paratime.Run(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	fmt.Println("WCET", rep.Tasks[0].WCET)
	// Output: WCET 90
}

// ExampleRun_joint runs a joint shared-L2 scenario (Li et al.'s
// age-shift model): co-runner conflicts can only inflate a task's
// bound, and the report carries both the solo baseline and the delta.
func ExampleRun_joint() {
	tasks := paratime.Suite()[:2]
	specTasks := make([]paratime.ScenarioTask, len(tasks))
	for i, task := range tasks {
		st, err := paratime.ScenarioTaskOf(task)
		if err != nil {
			panic(err)
		}
		specTasks[i] = st
	}
	sc := &paratime.Scenario{
		Spec:   paratime.SpecVersion,
		Name:   "joint",
		Tasks:  specTasks,
		System: paratime.DefaultScenarioSystem(),
		Mode:   paratime.ScenarioMode{Kind: paratime.ModeJoint, Model: "ageshift"},
	}
	rep, err := paratime.Run(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	for _, tr := range rep.Tasks {
		fmt.Printf("%s: joint >= solo: %v\n", tr.Name, tr.WCET >= tr.SoloWCET)
	}
	// Output:
	// fib24: joint >= solo: true
	// matmult4: joint >= solo: true
}

// ExampleNewSystem assembles a system configuration with functional
// options instead of hand-mutating SystemConfig fields, then feeds it
// into a scenario.
func ExampleNewSystem() {
	sys := paratime.NewSystem(
		paratime.WithL1I(paratime.CacheConfig{Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}),
		paratime.WithSharedL2(paratime.CacheConfig{Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}),
		paratime.WithMemController(paratime.DefaultMemConfig()),
	)
	sc := &paratime.Scenario{
		Spec:   paratime.SpecVersion,
		Name:   "custom-system",
		Tasks:  []paratime.ScenarioTask{{Name: "demo", Source: demoSrc}},
		System: paratime.ScenarioSystemOf(sys),
		Mode:   paratime.ScenarioMode{Kind: paratime.ModeSolo},
	}
	rep, err := paratime.Run(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	fmt.Println("WCET on the small system:", rep.Tasks[0].WCET > 0)
	// Output: WCET on the small system: true
}

// ExampleDecodeScenario shows the serialized face of the same API: a
// JSON scenario file decodes (with strict validation) and runs.
func ExampleDecodeScenario() {
	sc, err := paratime.DecodeScenario([]byte(`{
	  "spec": 1,
	  "name": "from-json",
	  "tasks": [{"name": "demo", "source": "        li r1, 10\nloop:   addi r1, r1, -1\n        bne r1, r0, loop\n        halt"}],
	  "system": {
	    "l1i": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1},
	    "l1d": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1},
	    "l2":  {"sets": 32, "ways": 4, "lineBytes": 32, "hitLatency": 4}
	  },
	  "mode": {"kind": "solo"}
	}`))
	if err != nil {
		panic(err)
	}
	rep, err := paratime.Run(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	fmt.Println("WCET", rep.Tasks[0].WCET)
	// Output: WCET 90
}
