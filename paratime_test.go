package paratime

import (
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	prog := MustAssemble("t", `
        li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	a, err := Analyze(Task{Name: "t", Prog: prog}, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if a.WCET <= 0 {
		t.Fatal("no WCET")
	}
	res, err := Simulate(BuildSim(DefaultSystem(), DefaultMemConfig(), nil, false,
		Task{Name: "t", Prog: prog}), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.WCET < res.Cycles(0) {
		t.Fatalf("facade bound unsound: %d < %d", a.WCET, res.Cycles(0))
	}
}

func TestFacadeSuiteAndBench(t *testing.T) {
	suite := Suite()
	if len(suite) < 7 {
		t.Fatalf("suite has %d tasks", len(suite))
	}
	if _, err := Bench(suite[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := Bench("nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeJoint(t *testing.T) {
	sys := DefaultSystem()
	res, err := AnalyzeJoint(Suite()[:3], sys, AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Names {
		if res.JointWCET[i] < res.SoloWCET[i] {
			t.Errorf("joint %d below solo %d", res.JointWCET[i], res.SoloWCET[i])
		}
	}
}

func TestFacadeArbiters(t *testing.T) {
	sys := DefaultSystem()
	lat := TransactionLatency(sys, DefaultMemConfig())
	rr := NewRoundRobinBus(4, lat)
	if rr.Bound(0) != 4*lat-1 {
		t.Errorf("rr bound = %d, want N*L-1 = %d", rr.Bound(0), 4*lat-1)
	}
	mb := NewMultiBandwidthBus([]int{2, 1}, lat)
	if mb.Bound(0) > mb.Bound(1) {
		t.Error("heavier weight should not get a worse bound")
	}
	if !strings.Contains(mb.Name(), "mbba") {
		t.Error("arbiter name")
	}
}

func TestWithBusDelayDoesNotMutate(t *testing.T) {
	sys := DefaultSystem()
	_ = WithBusDelay(sys, 99)
	if sys.Mem.BusDelay != 0 {
		t.Error("WithBusDelay mutated its argument")
	}
}
