package paratime

import (
	"context"
	"strings"
	"testing"

	"paratime/internal/workload"
)

func TestFacadeQuickstart(t *testing.T) {
	prog := MustAssemble("t", `
        li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	a, err := Analyze(Task{Name: "t", Prog: prog}, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if a.WCET <= 0 {
		t.Fatal("no WCET")
	}
	res, err := Simulate(BuildSim(DefaultSystem(), DefaultMemConfig(), nil, false,
		Task{Name: "t", Prog: prog}), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.WCET < res.Cycles(0) {
		t.Fatalf("facade bound unsound: %d < %d", a.WCET, res.Cycles(0))
	}
}

func TestFacadeSuiteAndBench(t *testing.T) {
	suite := Suite()
	if len(suite) < 7 {
		t.Fatalf("suite has %d tasks", len(suite))
	}
	if _, err := Bench(suite[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := Bench("nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeJoint(t *testing.T) {
	tasks := Suite()[:3]
	specTasks := make([]ScenarioTask, len(tasks))
	for i, task := range tasks {
		st, err := ScenarioTaskOf(task)
		if err != nil {
			t.Fatal(err)
		}
		specTasks[i] = st
	}
	rep, err := Run(context.Background(), &Scenario{
		Spec: SpecVersion, Name: "joint", Tasks: specTasks,
		System: DefaultScenarioSystem(),
		Mode:   ScenarioMode{Kind: ModeJoint, Model: "ageshift"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tasks {
		if tr.WCET < tr.SoloWCET {
			t.Errorf("joint %d below solo %d", tr.WCET, tr.SoloWCET)
		}
	}
}

func TestFacadeArbiters(t *testing.T) {
	sys := DefaultSystem()
	lat := DefaultMemConfig().Bound() + sys.Mem.L2.HitLatency // one full memory round trip
	rr := NewRoundRobinBus(4, lat)
	if rr.Bound(0) != 4*lat-1 {
		t.Errorf("rr bound = %d, want N*L-1 = %d", rr.Bound(0), 4*lat-1)
	}
	mb := NewMultiBandwidthBus([]int{2, 1}, lat)
	if mb.Bound(0) > mb.Bound(1) {
		t.Error("heavier weight should not get a worse bound")
	}
	if !strings.Contains(mb.Name(), "mbba") {
		t.Error("arbiter name")
	}
}

func TestNewSystemOptions(t *testing.T) {
	small := CacheConfig{Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	sys := NewSystem(
		WithL1I(small),
		WithSharedL2(CacheConfig{Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}),
		WithArbitrationDelay(7),
		WithMemLatency(33),
	)
	if sys.Mem.L1I.Sets != 4 || sys.Mem.L1I.Name != "L1I" {
		t.Errorf("WithL1I not applied: %+v", sys.Mem.L1I)
	}
	if sys.Mem.L2 == nil || sys.Mem.L2.Sets != 16 || sys.Mem.L2.Name != "L2" {
		t.Errorf("WithSharedL2 not applied: %+v", sys.Mem.L2)
	}
	if sys.Mem.BusDelay != 7 || sys.Mem.MemLatency != 33 {
		t.Errorf("delay options not applied: %+v", sys.Mem)
	}
	if def := DefaultSystem(); def.Mem.BusDelay != 0 {
		t.Error("NewSystem mutated the shared default")
	}
	if NewSystem(WithoutL2()).Mem.L2 != nil {
		t.Error("WithoutL2 not applied")
	}
	if got, want := NewSystem(WithMemController(DefaultMemConfig())).Mem.MemLatency, DefaultMemConfig().Bound(); got != want {
		t.Errorf("WithMemController latency %d, want %d", got, want)
	}
}

// TestCrossLayerSoundnessRandomPrograms is the toolkit-wide soundness
// property over the full stack: random structured programs are analyzed
// and co-run under every sharing regime the simulator can validate —
// solo, joint shared-L2, partitioned L2 (each core confined to a
// private partition view), and a shared round-robin bus — and in every
// case the static WCET must bound the simulated cycle count.
func TestCrossLayerSoundnessRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tasks := []Task{
			workload.Random(1000+seed, workload.Slot(0)),
			workload.Random(2000+seed, workload.Slot(1)),
		}
		specTasks := make([]ScenarioTask, len(tasks))
		for i, task := range tasks {
			st, err := ScenarioTaskOf(task)
			if err != nil {
				t.Fatal(err)
			}
			specTasks[i] = st
		}
		modes := []ScenarioMode{
			{Kind: ModeSolo},
			{Kind: ModeJoint, Model: "ageshift"},
			{Kind: ModePartition, Partition: &ScenarioPartition{Scheme: "task"}},
			{Kind: ModeBus, Bus: &ScenarioBus{Policy: "roundrobin"}},
		}
		for _, mode := range modes {
			sc := &Scenario{
				Spec:   SpecVersion,
				Name:   mode.Kind,
				Tasks:  specTasks,
				System: DefaultScenarioSystem(),
				Mode:   mode,
				Sim:    &ScenarioSim{MaxCycles: 50_000_000},
			}
			rep, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatalf("seed %d mode %s: %v", seed, mode.Kind, err)
			}
			if len(rep.Sim) != len(tasks) {
				t.Fatalf("seed %d mode %s: %d sim entries for %d tasks",
					seed, mode.Kind, len(rep.Sim), len(tasks))
			}
			for i, sr := range rep.Sim {
				if !sr.Sound {
					t.Errorf("seed %d mode %s task %s: UNSOUND WCET %d < simulated %d",
						seed, mode.Kind, rep.Tasks[i].Name, rep.Tasks[i].WCET, sr.Cycles)
				}
			}
		}
	}
}
